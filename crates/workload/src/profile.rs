//! Benchmark profiles: compact descriptions of a synthetic benchmark's phase
//! structure from which a full `phase-ir` program is generated.
//!
//! The paper evaluates on SPEC CPU 2000/2006 binaries. Those binaries (and
//! the licence to ship them) are not available here, so each benchmark is
//! replaced by a synthetic program whose *phase structure* — how much of the
//! work is CPU-bound versus memory-bound, how often behaviour changes, and
//! roughly how long it runs relative to the others — mimics the published
//! characteristics. The static analyses and the runtime tuner only ever see
//! instruction mixes, CFG shape, and IPC, so this preserves the behaviour the
//! experiments measure.

use phase_ir::AccessPattern;
use serde::{Deserialize, Serialize};

/// The behavioural flavour of one phase of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Dominated by integer arithmetic with small working sets.
    CpuInteger,
    /// Dominated by floating-point arithmetic with small working sets.
    CpuFloat,
    /// Streaming memory traffic over a large working set.
    MemoryStreaming,
    /// Dependent (pointer-chasing) accesses over a large working set.
    MemoryPointerChase,
    /// A mix of arithmetic and cache-resident memory accesses.
    Balanced,
}

impl PhaseKind {
    /// Whether this phase's performance is limited by the memory system.
    pub fn is_memory_bound(self) -> bool {
        matches!(
            self,
            PhaseKind::MemoryStreaming | PhaseKind::MemoryPointerChase
        )
    }
}

/// One phase of a benchmark: a loop nest with a particular behavioural
/// flavour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// The phase's behavioural flavour.
    pub kind: PhaseKind,
    /// Iterations of the phase's main loop per visit.
    pub loop_trips: u32,
    /// Iterations of the inner loop nested inside the main loop.
    pub inner_trips: u32,
    /// Instructions per loop-body block.
    pub block_size: usize,
    /// Working-set size in bytes touched by the phase's memory accesses.
    pub working_set_bytes: u64,
    /// Whether the phase's loop body is *uniform*: the generator then skips
    /// the opposite-flavour contrast block it normally interleaves, so every
    /// block of the phase shares one flavour. Combined with block sizes below
    /// the static pipeline's typing threshold this produces programs the
    /// static pipeline cannot mark at all — the territory of the online
    /// tuner (`phase-online`).
    pub uniform: bool,
}

impl PhaseSpec {
    /// A CPU-bound floating-point phase.
    pub fn cpu_float(loop_trips: u32, inner_trips: u32, block_size: usize) -> Self {
        Self {
            kind: PhaseKind::CpuFloat,
            loop_trips,
            inner_trips,
            block_size,
            working_set_bytes: 16 * 1024,
            uniform: false,
        }
    }

    /// A CPU-bound integer phase.
    pub fn cpu_integer(loop_trips: u32, inner_trips: u32, block_size: usize) -> Self {
        Self {
            kind: PhaseKind::CpuInteger,
            loop_trips,
            inner_trips,
            block_size,
            working_set_bytes: 16 * 1024,
            uniform: false,
        }
    }

    /// A memory-streaming phase over the given working set.
    pub fn memory_streaming(
        loop_trips: u32,
        inner_trips: u32,
        block_size: usize,
        working_set_bytes: u64,
    ) -> Self {
        Self {
            kind: PhaseKind::MemoryStreaming,
            loop_trips,
            inner_trips,
            block_size,
            working_set_bytes,
            uniform: false,
        }
    }

    /// A pointer-chasing phase over the given working set.
    pub fn pointer_chase(
        loop_trips: u32,
        inner_trips: u32,
        block_size: usize,
        working_set_bytes: u64,
    ) -> Self {
        Self {
            kind: PhaseKind::MemoryPointerChase,
            loop_trips,
            inner_trips,
            block_size,
            working_set_bytes,
            uniform: false,
        }
    }

    /// A balanced phase with cache-resident data.
    pub fn balanced(loop_trips: u32, inner_trips: u32, block_size: usize) -> Self {
        Self {
            kind: PhaseKind::Balanced,
            loop_trips,
            inner_trips,
            block_size,
            working_set_bytes: 256 * 1024,
            uniform: false,
        }
    }

    /// Marks the phase as uniform: no contrast block is generated, so every
    /// block shares the phase's flavour (see [`PhaseSpec::uniform`]).
    pub fn uniform(mut self) -> Self {
        self.uniform = true;
        self
    }

    /// The access pattern memory instructions of this phase use.
    pub fn access_pattern(&self) -> AccessPattern {
        match self.kind {
            PhaseKind::CpuInteger | PhaseKind::CpuFloat => AccessPattern::Sequential,
            PhaseKind::MemoryStreaming => AccessPattern::Strided { stride_bytes: 8 },
            PhaseKind::MemoryPointerChase => AccessPattern::PointerChase,
            PhaseKind::Balanced => AccessPattern::Sequential,
        }
    }

    /// Approximate number of dynamic instructions one visit of the phase
    /// executes (loop body instructions times trip counts).
    pub fn approx_dynamic_instructions(&self) -> u64 {
        (self.block_size as u64 + 2)
            * u64::from(self.inner_trips.max(1))
            * u64::from(self.loop_trips.max(1))
    }

    /// Scales the phase's trip counts by a factor, keeping at least one trip.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |trips: u32| -> u32 { ((f64::from(trips) * factor).round() as u32).max(1) };
        Self {
            loop_trips: scale(self.loop_trips),
            ..*self
        }
    }
}

/// A complete benchmark profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC-style, e.g. `183.equake`).
    pub name: String,
    /// The phases visited, in order, on every iteration of the outer loop.
    pub phases: Vec<PhaseSpec>,
    /// How many times the phase sequence repeats.
    pub repeats: u32,
}

impl BenchmarkProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or `repeats` is zero.
    pub fn new(name: impl Into<String>, phases: Vec<PhaseSpec>, repeats: u32) -> Self {
        assert!(!phases.is_empty(), "a benchmark needs at least one phase");
        assert!(repeats > 0, "a benchmark must run its phases at least once");
        Self {
            name: name.into(),
            phases,
            repeats,
        }
    }

    /// Approximate total dynamic instruction count of the benchmark.
    pub fn approx_dynamic_instructions(&self) -> u64 {
        u64::from(self.repeats)
            * self
                .phases
                .iter()
                .map(PhaseSpec::approx_dynamic_instructions)
                .sum::<u64>()
    }

    /// Number of *statically distinct* phases (by kind) — benchmarks whose
    /// phases all share one kind have no phase transitions at all, like
    /// 459.GemsFDTD and 473.astar in the paper's Table 1.
    pub fn distinct_phase_kinds(&self) -> usize {
        let mut kinds: Vec<PhaseKind> = self.phases.iter().map(|p| p.kind).collect();
        kinds.sort_by_key(|k| format!("{k:?}"));
        kinds.dedup();
        kinds.len()
    }

    /// Returns a copy with every phase's trip counts scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            name: self.name.clone(),
            phases: self.phases.iter().map(|p| p.scaled(factor)).collect(),
            repeats: self.repeats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_kind_memory_predicate() {
        assert!(PhaseKind::MemoryStreaming.is_memory_bound());
        assert!(PhaseKind::MemoryPointerChase.is_memory_bound());
        assert!(!PhaseKind::CpuFloat.is_memory_bound());
        assert!(!PhaseKind::Balanced.is_memory_bound());
    }

    #[test]
    fn approx_instruction_count_scales_with_trips() {
        let small = PhaseSpec::cpu_float(10, 10, 20);
        let large = PhaseSpec::cpu_float(100, 10, 20);
        assert!(large.approx_dynamic_instructions() > small.approx_dynamic_instructions());
        assert_eq!(
            large.approx_dynamic_instructions(),
            10 * small.approx_dynamic_instructions()
        );
    }

    #[test]
    fn profile_counts_distinct_kinds() {
        let profile = BenchmarkProfile::new(
            "x",
            vec![
                PhaseSpec::cpu_float(10, 10, 20),
                PhaseSpec::memory_streaming(10, 10, 20, 1 << 20),
                PhaseSpec::cpu_float(5, 5, 20),
            ],
            3,
        );
        assert_eq!(profile.distinct_phase_kinds(), 2);
        assert!(profile.approx_dynamic_instructions() > 0);
    }

    #[test]
    fn scaling_changes_outer_trips_only() {
        let phase = PhaseSpec::cpu_float(10, 7, 20);
        let scaled = phase.scaled(2.0);
        assert_eq!(scaled.loop_trips, 20);
        assert_eq!(scaled.inner_trips, 7);
        let tiny = phase.scaled(0.0001);
        assert_eq!(tiny.loop_trips, 1);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_is_rejected() {
        let _ = BenchmarkProfile::new("empty", vec![], 1);
    }

    #[test]
    fn access_patterns_match_kinds() {
        assert_eq!(
            PhaseSpec::pointer_chase(1, 1, 10, 1 << 20).access_pattern(),
            AccessPattern::PointerChase
        );
        assert_eq!(
            PhaseSpec::cpu_integer(1, 1, 10).access_pattern(),
            AccessPattern::Sequential
        );
    }
}
