//! Program generation: turning a [`BenchmarkProfile`] into a runnable
//! `phase-ir` program.
//!
//! Every phase becomes its own procedure containing a two-deep loop nest whose
//! blocks carry the phase's instruction mix; the main procedure visits the
//! phases in order inside an outer loop. This gives the static analyses a
//! realistic shape to chew on — nested loops, calls from inside loops, glue
//! blocks between phases — while keeping generation deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use phase_ir::{
    AccessPattern, BlockId, InstrClass, Instruction, MemRef, ProcId, Program, ProgramBuilder,
    Terminator,
};

use crate::profile::{BenchmarkProfile, PhaseKind, PhaseSpec};

/// Generates the program described by a profile.
///
/// Generation is deterministic for a given `(profile, seed)` pair, so the
/// baseline and tuned runs of an experiment execute byte-identical programs.
///
/// # Panics
///
/// Panics only if the profile violates its own documented invariants (it is
/// constructed through [`BenchmarkProfile::new`], which validates them).
pub fn generate_program(profile: &BenchmarkProfile, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&profile.name));
    let mut builder = ProgramBuilder::new(profile.name.clone());
    let main = builder.declare_procedure("main");
    let phase_procs: Vec<ProcId> = profile
        .phases
        .iter()
        .enumerate()
        .map(|(i, _)| builder.declare_procedure(format!("phase_{i}")))
        .collect();
    // Cold utility code: real binaries carry large amounts of rarely-executed
    // code (initialisation, error paths, library glue); it dominates the
    // *static* size against which phase-mark space overhead is measured while
    // contributing almost nothing dynamically. Each procedure is called once
    // at start-up.
    let cold_procs: Vec<ProcId> = (0..COLD_PROCEDURES)
        .map(|i| builder.declare_procedure(format!("cold_{i}")))
        .collect();

    // Main procedure: entry, a one-time chain of cold-code calls, then one
    // call block per phase, an outer latch looping `repeats` times, and exit.
    let mut body = builder.procedure_builder();
    let entry = body.add_block();
    body.push_all(entry, glue_instructions(&mut rng, 6));

    let cold_blocks: Vec<BlockId> = cold_procs.iter().map(|_| body.add_block()).collect();
    let call_blocks: Vec<BlockId> = profile.phases.iter().map(|_| body.add_block()).collect();
    let latch = body.add_block();
    let exit = body.add_block();

    let first_after_entry = cold_blocks.first().copied().unwrap_or(call_blocks[0]);
    body.terminate(entry, Terminator::Jump(first_after_entry));
    for (i, (&block, &callee)) in cold_blocks.iter().zip(&cold_procs).enumerate() {
        body.push_all(block, glue_instructions(&mut rng, 3));
        let next = if i + 1 < cold_blocks.len() {
            cold_blocks[i + 1]
        } else {
            call_blocks[0]
        };
        body.terminate(
            block,
            Terminator::Call {
                callee,
                return_to: next,
            },
        );
    }
    for (i, (&block, &callee)) in call_blocks.iter().zip(&phase_procs).enumerate() {
        body.push_all(block, glue_instructions(&mut rng, 4));
        let next = if i + 1 < call_blocks.len() {
            call_blocks[i + 1]
        } else {
            latch
        };
        body.terminate(
            block,
            Terminator::Call {
                callee,
                return_to: next,
            },
        );
    }
    body.push_all(latch, glue_instructions(&mut rng, 4));
    if profile.repeats > 1 {
        body.loop_branch(latch, call_blocks[0], exit, profile.repeats - 1);
    } else {
        body.terminate(latch, Terminator::Jump(exit));
    }
    body.push_all(exit, glue_instructions(&mut rng, 4));
    body.terminate(exit, Terminator::Exit);
    builder
        .define_procedure(main, body)
        .expect("generated main procedure is well formed");

    // One procedure per phase.
    for (spec, &proc_id) in profile.phases.iter().zip(&phase_procs) {
        let proc = build_phase_procedure(spec, &mut rng);
        builder
            .define_procedure(proc_id, proc)
            .expect("generated phase procedure is well formed");
    }

    // Cold utility procedures: straight-line chains of moderately sized,
    // compute-flavoured blocks.
    for &proc_id in &cold_procs {
        let mut cold = phase_ir::ProcedureBuilder::new();
        let blocks: Vec<BlockId> = (0..COLD_BLOCKS_PER_PROCEDURE)
            .map(|_| cold.add_block())
            .collect();
        for &b in &blocks {
            cold.push_all(b, cold_instructions(&mut rng, COLD_BLOCK_SIZE));
        }
        for pair in blocks.windows(2) {
            cold.terminate(pair[0], Terminator::Jump(pair[1]));
        }
        cold.terminate(
            *blocks.last().expect("cold procedure has blocks"),
            Terminator::Return,
        );
        builder
            .define_procedure(proc_id, cold)
            .expect("generated cold procedure is well formed");
    }

    builder
        .build()
        .expect("generated program passes validation")
}

/// Number of cold utility procedures per benchmark.
const COLD_PROCEDURES: usize = 8;
/// Blocks per cold procedure.
const COLD_BLOCKS_PER_PROCEDURE: usize = 12;
/// Instructions per cold block.
const COLD_BLOCK_SIZE: usize = 50;

/// Instruction mix of cold utility code: integer-dominated with cache-resident
/// accesses, uniform enough that it never contributes phase transitions.
fn cold_instructions(rng: &mut StdRng, count: usize) -> Vec<Instruction> {
    (0..count)
        .map(|_| {
            let roll: f64 = rng.gen();
            if roll < 0.6 {
                Instruction::int_alu()
            } else if roll < 0.8 {
                Instruction::load(MemRef::new(AccessPattern::Sequential, 32 * 1024))
            } else {
                Instruction::new(InstrClass::IntMul)
            }
        })
        .collect()
}

/// Builds the loop nest of one phase.
///
/// The inner loop body deliberately mixes one large block carrying the
/// phase's flavour with a small *contrasting* block of the opposite flavour
/// (real loop bodies interleave address arithmetic with their memory traffic
/// and vice versa). The loop's dominant type is still the phase's flavour, so
/// the loop-level technique hoists its single mark outside the nest, while
/// fine-grained basic-block marking sees a type change on every iteration —
/// exactly the contrast the paper's evaluation turns on.
fn build_phase_procedure(spec: &PhaseSpec, rng: &mut StdRng) -> phase_ir::ProcedureBuilder {
    let mut body = phase_ir::ProcedureBuilder::new();
    let entry = body.add_block();
    let outer_header = body.add_block();
    let inner_body = body.add_block();
    let contrast = body.add_block();
    let inner_latch = body.add_block();
    let outer_latch = body.add_block();
    let ret = body.add_block();

    body.push_all(entry, glue_instructions(rng, 5));
    body.terminate(entry, Terminator::Jump(outer_header));

    body.push_all(
        outer_header,
        phase_instructions(spec, rng, spec.block_size / 2),
    );
    body.terminate(outer_header, Terminator::Jump(inner_body));

    body.push_all(inner_body, phase_instructions(spec, rng, spec.block_size));
    body.terminate(inner_body, Terminator::Jump(contrast));

    if spec.uniform {
        // A uniform phase carries no contrast block: the slot keeps the
        // phase's own flavour at half the body size, so every block of the
        // phase looks (and behaves) alike.
        body.push_all(
            contrast,
            phase_instructions(spec, rng, (spec.block_size / 2).max(2)),
        );
    } else {
        body.push_all(
            contrast,
            contrast_instructions(spec, rng, CONTRAST_BLOCK_SIZE),
        );
    }
    body.terminate(contrast, Terminator::Jump(inner_latch));

    body.push_all(
        inner_latch,
        phase_instructions(spec, rng, spec.block_size / 4),
    );
    body.loop_branch(
        inner_latch,
        inner_body,
        outer_latch,
        spec.inner_trips.saturating_sub(1).max(1),
    );

    body.push_all(outer_latch, glue_instructions(rng, 4));
    body.loop_branch(
        outer_latch,
        outer_header,
        ret,
        spec.loop_trips.saturating_sub(1).max(1),
    );

    body.push_all(ret, glue_instructions(rng, 3));
    body.terminate(ret, Terminator::Return);
    body
}

/// Instructions in the contrasting block inserted into every phase's inner
/// loop body (17 instructions: large enough for `BB[10]`/`BB[15]` to type and
/// mark it, small enough for `BB[20]` and the section-level techniques to
/// ignore it).
const CONTRAST_BLOCK_SIZE: usize = 16;

/// A small block of the *opposite* flavour to the phase it sits in.
fn contrast_instructions(spec: &PhaseSpec, rng: &mut StdRng, count: usize) -> Vec<Instruction> {
    (0..count)
        .map(|_| {
            let roll: f64 = rng.gen();
            if spec.kind.is_memory_bound() {
                // Address arithmetic inside a memory-bound sweep.
                if roll < 0.8 {
                    Instruction::int_alu()
                } else {
                    Instruction::new(InstrClass::IntMul)
                }
            } else {
                // Cache-missing table lookups inside a compute kernel.
                if roll < 0.5 {
                    Instruction::load(MemRef::new(
                        AccessPattern::Strided { stride_bytes: 8 },
                        96 * 1024 * 1024,
                    ))
                } else {
                    Instruction::fp_add()
                }
            }
        })
        .collect()
}

/// Small, behaviourally-neutral glue code between phases.
fn glue_instructions(rng: &mut StdRng, count: usize) -> Vec<Instruction> {
    (0..count)
        .map(|_| {
            if rng.gen_bool(0.7) {
                Instruction::int_alu()
            } else {
                Instruction::nop()
            }
        })
        .collect()
}

/// The instruction mix of a phase-body block.
fn phase_instructions(spec: &PhaseSpec, rng: &mut StdRng, count: usize) -> Vec<Instruction> {
    let count = count.max(2);
    let mem = MemRef::new(spec.access_pattern(), spec.working_set_bytes.max(64));
    (0..count)
        .map(|_| {
            let roll: f64 = rng.gen();
            match spec.kind {
                PhaseKind::CpuInteger => {
                    if roll < 0.70 {
                        Instruction::int_alu()
                    } else if roll < 0.85 {
                        Instruction::new(InstrClass::IntMul)
                    } else {
                        Instruction::load(MemRef::new(AccessPattern::Sequential, 16 * 1024))
                    }
                }
                PhaseKind::CpuFloat => {
                    if roll < 0.40 {
                        Instruction::fp_mul()
                    } else if roll < 0.70 {
                        Instruction::fp_add()
                    } else if roll < 0.85 {
                        Instruction::int_alu()
                    } else {
                        Instruction::load(MemRef::new(AccessPattern::Sequential, 16 * 1024))
                    }
                }
                PhaseKind::MemoryStreaming => {
                    if roll < 0.24 {
                        Instruction::load(mem)
                    } else if roll < 0.30 {
                        Instruction::store(mem)
                    } else if roll < 0.58 {
                        Instruction::load(MemRef::new(AccessPattern::Sequential, 16 * 1024))
                    } else if roll < 0.85 {
                        Instruction::fp_add()
                    } else {
                        Instruction::int_alu()
                    }
                }
                PhaseKind::MemoryPointerChase => {
                    if roll < 0.06 {
                        Instruction::load(mem)
                    } else if roll < 0.34 {
                        Instruction::load(MemRef::new(AccessPattern::Sequential, 64 * 1024))
                    } else if roll < 0.90 {
                        Instruction::int_alu()
                    } else {
                        Instruction::new(InstrClass::IntMul)
                    }
                }
                PhaseKind::Balanced => {
                    if roll < 0.25 {
                        Instruction::load(MemRef::new(AccessPattern::Sequential, 256 * 1024))
                    } else if roll < 0.50 {
                        Instruction::fp_add()
                    } else {
                        Instruction::int_alu()
                    }
                }
            }
        })
        .collect()
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, to decorrelate benchmarks generated from the same seed.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PhaseSpec;

    fn two_phase_profile() -> BenchmarkProfile {
        BenchmarkProfile::new(
            "test.twophase",
            vec![
                PhaseSpec::cpu_float(8, 6, 24),
                PhaseSpec::memory_streaming(8, 6, 24, 64 * 1024 * 1024),
            ],
            3,
        )
    }

    #[test]
    fn generated_program_is_valid_and_named() {
        let program = generate_program(&two_phase_profile(), 42);
        assert_eq!(program.name(), "test.twophase");
        // main + one procedure per phase + the cold utility procedures.
        assert_eq!(program.procedures().len(), 2 + 1 + COLD_PROCEDURES);
        assert!(program.stats().instructions > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let profile = two_phase_profile();
        let a = generate_program(&profile, 7);
        let b = generate_program(&profile, 7);
        assert_eq!(a, b);
        let c = generate_program(&profile, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn phase_procedures_contain_loops() {
        use phase_cfg::{Cfg, DominatorTree, LoopForest};
        let program = generate_program(&two_phase_profile(), 1);
        for proc in program
            .procedures()
            .iter()
            .filter(|p| p.name().starts_with("phase_"))
        {
            let cfg = Cfg::build(proc);
            let dom = DominatorTree::build(&cfg);
            let loops = LoopForest::build(&cfg, &dom);
            assert!(
                loops.loop_count() >= 2,
                "phase procedure {} should have a loop nest",
                proc.name()
            );
        }
    }

    #[test]
    fn memory_phase_blocks_contain_large_working_set_accesses() {
        let program = generate_program(&two_phase_profile(), 3);
        let memory_proc = program
            .procedures()
            .iter()
            .find(|p| p.name() == "phase_1")
            .unwrap();
        let has_big_access = memory_proc
            .blocks()
            .iter()
            .any(|b| b.mem_refs().any(|m| m.region_bytes >= 64 * 1024 * 1024));
        assert!(has_big_access);
    }

    #[test]
    fn cpu_phase_has_mostly_arithmetic() {
        let program = generate_program(&two_phase_profile(), 3);
        let cpu_proc = program
            .procedures()
            .iter()
            .find(|p| p.name() == "phase_0")
            .unwrap();
        let mix = cpu_proc.static_mix();
        assert!(mix.floating_point_ratio() + mix.integer_ratio() > 0.5);
        assert!(mix.memory_ratio() < 0.35);
    }

    #[test]
    fn single_repeat_profile_generates_straight_main() {
        let profile =
            BenchmarkProfile::new("test.single", vec![PhaseSpec::cpu_integer(4, 4, 16)], 1);
        let program = generate_program(&profile, 9);
        assert_eq!(program.procedures().len(), 1 + 1 + COLD_PROCEDURES);
        assert!(program.stats().blocks >= 5);
    }
}
