//! Workload construction: slots of job queues, as in the paper's evaluation.
//!
//! "Our workloads range in size from 18 to 84 randomly selected benchmarks
//! ... we maintain a job queue for each workload slot. That is, if we have a
//! workload of size 18 then there are 18 queues. ... Upon completion of any
//! process in a queue, the next job in the queue is immediately started. When
//! comparing two techniques, the same queues were used for each experiment"
//! (Section IV-A2). [`Workload`] reproduces exactly that structure; building
//! it from a seed guarantees the baseline and the tuned runs see identical
//! queues.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arrivals::{SplitMix64, TraceShape};
use crate::catalog::{BenchmarkId, Catalog};

/// One workload slot: an ordered queue of benchmarks run back to back,
/// optionally released (started) only after a given time. Open-loop serving
/// queues ([`JobQueue::open_loop`]) additionally carry one scheduled release
/// per job and a relative completion deadline.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobQueue {
    jobs: Vec<BenchmarkId>,
    release_ns: f64,
    arrivals_ns: Vec<f64>,
    deadline_ns: Option<f64>,
}

impl JobQueue {
    /// Creates a queue from an explicit job list, released at time zero.
    pub fn new(jobs: Vec<BenchmarkId>) -> Self {
        Self {
            jobs,
            release_ns: 0.0,
            arrivals_ns: Vec::new(),
            deadline_ns: None,
        }
    }

    /// Creates an open-loop queue: job `i` is released at `arrivals_ns[i]`
    /// and, when `deadline_ns` is set, must complete within that many
    /// nanoseconds of its release.
    ///
    /// # Panics
    ///
    /// Panics unless there is exactly one arrival per job.
    pub fn open_loop(
        jobs: Vec<BenchmarkId>,
        arrivals_ns: Vec<f64>,
        deadline_ns: Option<f64>,
    ) -> Self {
        assert_eq!(
            jobs.len(),
            arrivals_ns.len(),
            "an open-loop queue needs one arrival per job"
        );
        let release_ns = arrivals_ns.first().copied().unwrap_or(0.0);
        Self {
            jobs,
            release_ns,
            arrivals_ns,
            deadline_ns,
        }
    }

    /// Delays the queue's first job until `release_ns` (bursty arrivals).
    pub fn released_at(mut self, release_ns: f64) -> Self {
        self.release_ns = release_ns;
        self
    }

    /// The earliest time the queue's first job may start, in nanoseconds.
    pub fn release_ns(&self) -> f64 {
        self.release_ns
    }

    /// The scheduled release of the job at `position`, in nanoseconds: its
    /// own arrival for open-loop queues, the queue release for the first job
    /// of a classic queue, and zero (start as soon as the predecessor
    /// finishes) otherwise.
    pub fn job_release_ns(&self, position: usize) -> f64 {
        self.arrivals_ns.get(position).copied().unwrap_or({
            if position == 0 {
                self.release_ns
            } else {
                0.0
            }
        })
    }

    /// The queue's relative completion deadline, measured from each job's
    /// scheduled release, if any.
    pub fn deadline_ns(&self) -> Option<f64> {
        self.deadline_ns
    }

    /// The jobs in execution order.
    pub fn jobs(&self) -> &[BenchmarkId] {
        &self.jobs
    }

    /// Number of jobs in the queue.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The job at a given position, if any.
    pub fn job(&self, position: usize) -> Option<BenchmarkId> {
        self.jobs.get(position).copied()
    }
}

/// A workload: a fixed number of slots, each with its own job queue.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Workload {
    slots: Vec<JobQueue>,
}

impl Workload {
    /// Creates a workload from explicit slot queues.
    pub fn new(slots: Vec<JobQueue>) -> Self {
        Self { slots }
    }

    /// Builds a workload of `slots` queues, each containing `jobs_per_slot`
    /// benchmarks selected uniformly at random from the catalogue.
    ///
    /// Construction is deterministic for a `(catalog length, slots,
    /// jobs_per_slot, seed)` tuple so that competing scheduling techniques
    /// are compared on identical queues.
    ///
    /// # Panics
    ///
    /// Panics if the catalogue is empty or `slots`/`jobs_per_slot` is zero.
    pub fn random(catalog: &Catalog, slots: usize, jobs_per_slot: usize, seed: u64) -> Self {
        assert!(
            !catalog.is_empty(),
            "cannot build a workload from an empty catalogue"
        );
        assert!(slots > 0, "a workload needs at least one slot");
        assert!(jobs_per_slot > 0, "each slot needs at least one job");
        let mut rng = StdRng::seed_from_u64(seed);
        let slots = (0..slots)
            .map(|_| {
                JobQueue::new(
                    (0..jobs_per_slot)
                        .map(|_| BenchmarkId(rng.gen_range(0..catalog.len())))
                        .collect(),
                )
            })
            .collect();
        Self { slots }
    }

    /// Builds a bursty-arrival workload: the same random queues as
    /// [`Workload::random`], but the slots are split into `bursts` equal
    /// waves and wave `k` is released only at `k * burst_gap_ns`. Between
    /// waves most cores drain and idle — the scenario the event-driven
    /// engine skips over and the round-based engine grinds through.
    ///
    /// # Panics
    ///
    /// Panics on the same empty inputs as [`Workload::random`], if `bursts`
    /// is zero, or if `burst_gap_ns` is negative or non-finite.
    pub fn bursty(
        catalog: &Catalog,
        slots: usize,
        jobs_per_slot: usize,
        bursts: usize,
        burst_gap_ns: f64,
        seed: u64,
    ) -> Self {
        assert!(bursts > 0, "a bursty workload needs at least one burst");
        assert!(
            burst_gap_ns.is_finite() && burst_gap_ns >= 0.0,
            "burst gap must be a non-negative time"
        );
        let mut workload = Self::random(catalog, slots, jobs_per_slot, seed);
        let bursts = bursts.min(slots);
        for (index, queue) in workload.slots.iter_mut().enumerate() {
            let wave = index * bursts / slots;
            queue.release_ns = wave as f64 * burst_gap_ns;
        }
        workload
    }

    /// Builds a drifting workload: every slot's queue walks the catalogue
    /// round-robin from a per-slot random offset, so each slot experiences
    /// the catalogue's full drift spectrum instead of a random subsample.
    /// Intended for the drifting-phase family (`Catalog::drifting`), where
    /// covering every rotation pattern matters more than random selection.
    ///
    /// # Panics
    ///
    /// Panics on the same degenerate inputs as [`Workload::random`].
    pub fn drifting(catalog: &Catalog, slots: usize, jobs_per_slot: usize, seed: u64) -> Self {
        assert!(
            !catalog.is_empty(),
            "cannot build a workload from an empty catalogue"
        );
        assert!(slots > 0, "a workload needs at least one slot");
        assert!(jobs_per_slot > 0, "each slot needs at least one job");
        let mut rng = StdRng::seed_from_u64(seed);
        let slots = (0..slots)
            .map(|_| {
                let offset = rng.gen_range(0..catalog.len());
                JobQueue::new(
                    (0..jobs_per_slot)
                        .map(|position| BenchmarkId((offset + position) % catalog.len()))
                        .collect(),
                )
            })
            .collect();
        Self { slots }
    }

    /// Builds an open-loop request-serving workload: `trace` generates
    /// arrival times at a mean of `rate_rps` requests per second over
    /// `duration_s` seconds, each arrival becomes one request drawn uniformly
    /// from the catalogue, and requests are dealt round-robin across up to
    /// `slots` server queues (slot `i` serves requests `i`, `i + slots`, …,
    /// each slot a FIFO worker). Unlike the batch workloads, job `k > 0` of a
    /// queue carries its own release time, and every request inherits the
    /// relative completion `deadline_ns` when one is given.
    ///
    /// Construction is deterministic for a `(catalog length, slots, trace,
    /// rate, duration, deadline, seed)` tuple. If the trace produces fewer
    /// requests than `slots`, only the populated slots are kept (the engine
    /// rejects empty queues).
    ///
    /// # Panics
    ///
    /// Panics if the catalogue is empty, `slots` is zero, the rate or
    /// duration is non-positive, or the trace generates no requests at all.
    #[allow(clippy::too_many_arguments)]
    pub fn open_loop(
        catalog: &Catalog,
        slots: usize,
        trace: TraceShape,
        rate_rps: f64,
        duration_s: f64,
        deadline_ns: Option<f64>,
        seed: u64,
    ) -> Self {
        assert!(
            !catalog.is_empty(),
            "cannot build a workload from an empty catalogue"
        );
        assert!(slots > 0, "a workload needs at least one slot");
        assert!(
            rate_rps.is_finite() && rate_rps > 0.0,
            "arrival rate must be a positive frequency"
        );
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "trace duration must be a positive time"
        );
        if let Some(deadline) = deadline_ns {
            assert!(
                deadline.is_finite() && deadline > 0.0,
                "deadline must be a positive time"
            );
        }
        let arrivals = trace.arrivals(rate_rps, duration_s, seed);
        assert!(
            !arrivals.is_empty(),
            "the trace produced no requests; raise the rate or duration"
        );
        let slots = slots.min(arrivals.len());
        // A second stream (offset so it never aliases the arrival stream)
        // picks each request's type.
        let mut mix = SplitMix64(seed ^ 0xA5A5_5A5A_F00D_CAFE);
        let mut jobs: Vec<Vec<BenchmarkId>> = vec![Vec::new(); slots];
        let mut releases: Vec<Vec<f64>> = vec![Vec::new(); slots];
        for (index, &offset_s) in arrivals.iter().enumerate() {
            let id = BenchmarkId((mix.next_u64() % catalog.len() as u64) as usize);
            jobs[index % slots].push(id);
            releases[index % slots].push(offset_s * 1e9);
        }
        let slots = jobs
            .into_iter()
            .zip(releases)
            .map(|(jobs, arrivals_ns)| JobQueue::open_loop(jobs, arrivals_ns, deadline_ns))
            .collect();
        Self { slots }
    }

    /// The paper's workload sizes: 18 to 84 simultaneous benchmarks.
    pub fn paper_sizes() -> Vec<usize> {
        vec![18, 36, 54, 84]
    }

    /// The slot queues.
    pub fn slots(&self) -> &[JobQueue] {
        &self.slots
    }

    /// Number of slots (simultaneously running benchmarks).
    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Total number of jobs across all queues.
    pub fn total_jobs(&self) -> usize {
        self.slots.iter().map(JobQueue::len).sum()
    }

    /// Histogram of how many times each benchmark appears in the workload.
    pub fn job_histogram(&self, catalog_len: usize) -> Vec<usize> {
        let mut histogram = vec![0usize; catalog_len];
        for slot in &self.slots {
            for job in slot.jobs() {
                if job.0 < catalog_len {
                    histogram[job.0] += 1;
                }
            }
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::tiny(7)
    }

    #[test]
    fn random_workload_has_requested_shape() {
        let workload = Workload::random(&catalog(), 18, 3, 42);
        assert_eq!(workload.size(), 18);
        assert_eq!(workload.total_jobs(), 54);
        for slot in workload.slots() {
            assert_eq!(slot.len(), 3);
            assert!(!slot.is_empty());
        }
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let catalog = catalog();
        let a = Workload::random(&catalog, 18, 3, 1);
        let b = Workload::random(&catalog, 18, 3, 1);
        let c = Workload::random(&catalog, 18, 3, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn jobs_reference_valid_benchmarks() {
        let catalog = catalog();
        let workload = Workload::random(&catalog, 36, 4, 3);
        for slot in workload.slots() {
            for &job in slot.jobs() {
                assert!(catalog.get(job).is_some());
            }
        }
    }

    #[test]
    fn histogram_counts_every_job() {
        let catalog = catalog();
        let workload = Workload::random(&catalog, 24, 5, 9);
        let histogram = workload.job_histogram(catalog.len());
        assert_eq!(histogram.iter().sum::<usize>(), workload.total_jobs());
    }

    #[test]
    fn large_workloads_use_most_of_the_catalogue() {
        let catalog = catalog();
        let workload = Workload::random(&catalog, 84, 4, 11);
        let histogram = workload.job_histogram(catalog.len());
        let used = histogram.iter().filter(|c| **c > 0).count();
        assert!(used >= catalog.len() - 2, "only {used} benchmarks used");
    }

    #[test]
    fn bursty_workload_staggers_releases_in_waves() {
        let catalog = catalog();
        let workload = Workload::bursty(&catalog, 12, 2, 3, 5_000_000.0, 4);
        assert_eq!(workload.size(), 12);
        let releases: Vec<f64> = workload.slots().iter().map(JobQueue::release_ns).collect();
        // First wave starts immediately, later waves are delayed.
        assert_eq!(releases[0], 0.0);
        assert_eq!(releases[11], 10_000_000.0);
        // Releases are non-decreasing across slots and form exactly 3 waves.
        assert!(releases.windows(2).all(|w| w[0] <= w[1]));
        let mut distinct = releases.clone();
        distinct.dedup();
        assert_eq!(distinct.len(), 3);
        // The queues themselves match the plain random workload.
        let plain = Workload::random(&catalog, 12, 2, 4);
        for (bursty, random) in workload.slots().iter().zip(plain.slots()) {
            assert_eq!(bursty.jobs(), random.jobs());
        }
    }

    #[test]
    fn single_burst_degenerates_to_all_at_once() {
        let catalog = catalog();
        let workload = Workload::bursty(&catalog, 6, 1, 1, 1_000_000.0, 9);
        assert!(workload.slots().iter().all(|q| q.release_ns() == 0.0));
    }

    #[test]
    fn drifting_workload_walks_the_catalogue_round_robin() {
        let catalog = catalog();
        let workload = Workload::drifting(&catalog, 10, 4, 3);
        assert_eq!(workload.size(), 10);
        for slot in workload.slots() {
            let jobs = slot.jobs();
            for pair in jobs.windows(2) {
                assert_eq!(
                    (pair[0].0 + 1) % catalog.len(),
                    pair[1].0,
                    "queues walk the catalogue in order"
                );
            }
        }
        // Deterministic per seed.
        assert_eq!(workload, Workload::drifting(&catalog, 10, 4, 3));
        assert_ne!(workload, Workload::drifting(&catalog, 10, 4, 4));
    }

    #[test]
    fn open_loop_workload_deals_requests_round_robin() {
        let catalog = Catalog::service(0.2, 5);
        let workload =
            Workload::open_loop(&catalog, 4, TraceShape::Poisson, 2_000.0, 0.05, None, 42);
        assert_eq!(workload.size(), 4);
        assert!(workload.total_jobs() > 20);
        for queue in workload.slots() {
            // Releases within a slot keep the trace's arrival order, and
            // every position carries its own release.
            let releases: Vec<f64> = (0..queue.len()).map(|p| queue.job_release_ns(p)).collect();
            assert!(releases.windows(2).all(|w| w[0] <= w[1]));
            assert!(releases.iter().skip(1).any(|&r| r > 0.0));
            assert_eq!(queue.release_ns(), releases[0]);
            assert_eq!(queue.deadline_ns(), None);
            for &job in queue.jobs() {
                assert!(catalog.get(job).is_some());
            }
        }
        // Deterministic per seed.
        let again = Workload::open_loop(&catalog, 4, TraceShape::Poisson, 2_000.0, 0.05, None, 42);
        assert_eq!(workload, again);
        let other = Workload::open_loop(&catalog, 4, TraceShape::Poisson, 2_000.0, 0.05, None, 43);
        assert_ne!(workload, other);
    }

    #[test]
    fn open_loop_deadline_is_carried_on_every_queue() {
        let catalog = Catalog::service(0.2, 5);
        let workload = Workload::open_loop(
            &catalog,
            3,
            TraceShape::Bursty,
            2_000.0,
            0.05,
            Some(5_000_000.0),
            7,
        );
        for queue in workload.slots() {
            assert_eq!(queue.deadline_ns(), Some(5_000_000.0));
        }
    }

    #[test]
    fn open_loop_drops_slots_the_trace_cannot_fill() {
        let catalog = Catalog::service(0.2, 5);
        // ~5 arrivals for 16 slots: only the populated slots survive.
        let workload = Workload::open_loop(&catalog, 16, TraceShape::Poisson, 100.0, 0.05, None, 3);
        assert!(workload.size() < 16);
        assert!(workload.slots().iter().all(|q| !q.is_empty()));
    }

    #[test]
    fn classic_queues_report_positional_releases() {
        let queue = JobQueue::new(vec![BenchmarkId(0), BenchmarkId(1)]).released_at(500.0);
        assert_eq!(queue.job_release_ns(0), 500.0);
        assert_eq!(queue.job_release_ns(1), 0.0);
        assert_eq!(queue.deadline_ns(), None);
    }

    #[test]
    fn paper_sizes_span_18_to_84() {
        let sizes = Workload::paper_sizes();
        assert_eq!(*sizes.first().unwrap(), 18);
        assert_eq!(*sizes.last().unwrap(), 84);
    }

    #[test]
    fn queue_position_lookup() {
        let queue = JobQueue::new(vec![BenchmarkId(3), BenchmarkId(1)]);
        assert_eq!(queue.job(0), Some(BenchmarkId(3)));
        assert_eq!(queue.job(1), Some(BenchmarkId(1)));
        assert_eq!(queue.job(2), None);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_workload_is_rejected() {
        let _ = Workload::random(&catalog(), 0, 3, 1);
    }
}
