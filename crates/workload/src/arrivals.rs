//! Open-loop arrival traces for request-serving workloads.
//!
//! A *trace shape* describes how request arrivals are distributed over a run:
//! memoryless Poisson arrivals, an on/off square wave (bursty), or one slow
//! sinusoidal swell (a compressed diurnal cycle). Every shape offers the same
//! mean rate over the run, so shapes differ only in how harshly they queue.
//! Arrival times are drawn by Lewis–Shedler thinning of a homogeneous process
//! at the shape's peak rate from a seeded SplitMix64 stream, so a given
//! `(shape, rate, duration, seed)` always produces the identical trace —
//! the property every determinism test in the workspace leans on.
//!
//! The same generators drive both the live TCP load benchmark (`bench_load`)
//! and the simulated serving workloads built by
//! [`WorkloadSpec::OpenLoop`](crate::WorkloadSpec).

use serde::{Deserialize, Serialize};

/// splitmix64: tiny, seedable, and good enough for arrival jitter.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The shape of an open-loop arrival trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceShape {
    /// Memoryless arrivals at a constant rate.
    Poisson,
    /// On/off square wave: the whole load arrives in 25%-duty bursts at 4x
    /// the mean rate (same offered load, much harsher queueing).
    Bursty,
    /// One slow sinusoidal swell across the run (a compressed day).
    Diurnal,
}

impl TraceShape {
    /// All shapes, in sweep order.
    pub fn all() -> [TraceShape; 3] {
        [TraceShape::Poisson, TraceShape::Bursty, TraceShape::Diurnal]
    }

    /// Stable lowercase name for labels and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TraceShape::Poisson => "poisson",
            TraceShape::Bursty => "bursty",
            TraceShape::Diurnal => "diurnal",
        }
    }

    /// Instantaneous arrival rate at `t`, shaped so every trace offers the
    /// same mean `rate_hz` over `duration_s`.
    pub fn intensity(self, t: f64, duration_s: f64, rate_hz: f64) -> f64 {
        match self {
            TraceShape::Poisson => rate_hz,
            TraceShape::Bursty => {
                const PERIOD_S: f64 = 0.2;
                const DUTY: f64 = 0.25;
                if (t / PERIOD_S).fract() < DUTY {
                    rate_hz / DUTY
                } else {
                    0.0
                }
            }
            TraceShape::Diurnal => {
                let phase = std::f64::consts::TAU * t / duration_s;
                rate_hz * (1.0 + 0.9 * phase.sin())
            }
        }
    }

    /// The maximum instantaneous rate the shape ever reaches.
    pub fn peak(self, rate_hz: f64) -> f64 {
        match self {
            TraceShape::Poisson => rate_hz,
            TraceShape::Bursty => rate_hz / 0.25,
            TraceShape::Diurnal => rate_hz * 1.9,
        }
    }

    /// Arrival offsets (seconds from trace start) via Lewis–Shedler thinning
    /// of a homogeneous process at the shape's peak rate.
    pub fn arrivals(self, rate_hz: f64, duration_s: f64, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64(seed);
        let peak = self.peak(rate_hz);
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += -(1.0 - rng.next_f64()).ln() / peak;
            if t >= duration_s {
                return out;
            }
            if rng.next_f64() * peak < self.intensity(t, duration_s, rate_hz) {
                out.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_sorted_and_bounded() {
        for shape in TraceShape::all() {
            let a = shape.arrivals(500.0, 2.0, 42);
            let b = shape.arrivals(500.0, 2.0, 42);
            assert_eq!(a, b, "{} trace must be reproducible", shape.name());
            assert!(!a.is_empty(), "{} trace produced no arrivals", shape.name());
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "{} arrivals out of order",
                shape.name()
            );
            assert!(a.iter().all(|&t| (0.0..2.0).contains(&t)));
        }
    }

    #[test]
    fn seeds_change_the_trace() {
        let a = TraceShape::Poisson.arrivals(500.0, 2.0, 1);
        let b = TraceShape::Poisson.arrivals(500.0, 2.0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn every_shape_offers_roughly_the_mean_rate() {
        for shape in TraceShape::all() {
            let arrivals = shape.arrivals(1_000.0, 4.0, 7);
            let mean = arrivals.len() as f64 / 4.0;
            assert!(
                (500.0..2_000.0).contains(&mean),
                "{}: mean rate {mean} strayed far from 1000",
                shape.name()
            );
        }
    }

    #[test]
    fn bursty_gaps_exist_and_diurnal_swells() {
        let bursty = TraceShape::Bursty.arrivals(1_000.0, 1.0, 9);
        let max_gap = bursty
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0f64, f64::max);
        assert!(
            max_gap > 0.05,
            "bursty trace never paused (max gap {max_gap})"
        );
        // The diurnal first half (rising sine) carries more arrivals than the
        // second (falling below the mean).
        let diurnal = TraceShape::Diurnal.arrivals(1_000.0, 2.0, 9);
        let first = diurnal.iter().filter(|&&t| t < 1.0).count();
        let second = diurnal.len() - first;
        assert!(first > second);
    }
}
