//! Declarative catalogue and workload descriptions.
//!
//! The evaluation harness sweeps axes such as *workload family* — which
//! benchmark catalogue to generate and how to queue jobs from it. Those axes
//! need a value-type description that can be compared, hashed into an
//! artifact key, and expanded on demand: [`CatalogSpec`] and [`WorkloadSpec`]
//! are exactly that. Building the same spec twice yields bit-identical
//! catalogues and workloads, which is what makes them safe cache keys for
//! the artifact store in `phase-core`.

use serde::{Deserialize, Serialize};

use crate::arrivals::TraceShape;
use crate::catalog::Catalog;
use crate::workload::Workload;

/// Which built-in catalogue family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CatalogKind {
    /// The fifteen SPEC-named benchmarks of the paper's Table 1.
    Standard,
    /// The mixed CPU/memory family (dense phase-transition traffic).
    Mixed,
    /// The drifting-phase / unmarkable-binary family.
    Drifting,
    /// [`CatalogKind::Standard`] plus [`CatalogKind::Mixed`].
    Extended,
    /// The request-serving pipeline family (NIC-poll → network-stack →
    /// application request types).
    Service,
}

impl CatalogKind {
    /// Short name used in labels and artifact spill files.
    pub fn name(self) -> &'static str {
        match self {
            CatalogKind::Standard => "standard",
            CatalogKind::Mixed => "mixed",
            CatalogKind::Drifting => "drifting",
            CatalogKind::Extended => "extended",
            CatalogKind::Service => "service",
        }
    }
}

/// A catalogue generation request: family, scale, and seed.
///
/// # Examples
///
/// ```
/// use phase_workload::CatalogSpec;
///
/// let spec = CatalogSpec::standard(0.05, 7);
/// let catalog = spec.build();
/// assert_eq!(catalog.len(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogSpec {
    /// The catalogue family.
    pub kind: CatalogKind,
    /// Trip-count multiplier (`1.0` is the standard experiment size).
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
}

impl CatalogSpec {
    /// The standard Table 1 catalogue.
    pub fn standard(scale: f64, seed: u64) -> Self {
        Self {
            kind: CatalogKind::Standard,
            scale,
            seed,
        }
    }

    /// The mixed CPU/memory family.
    pub fn mixed(scale: f64, seed: u64) -> Self {
        Self {
            kind: CatalogKind::Mixed,
            scale,
            seed,
        }
    }

    /// The drifting-phase family.
    pub fn drifting(scale: f64, seed: u64) -> Self {
        Self {
            kind: CatalogKind::Drifting,
            scale,
            seed,
        }
    }

    /// The extended (standard + mixed) catalogue.
    pub fn extended(scale: f64, seed: u64) -> Self {
        Self {
            kind: CatalogKind::Extended,
            scale,
            seed,
        }
    }

    /// The request-serving pipeline family.
    pub fn service(scale: f64, seed: u64) -> Self {
        Self {
            kind: CatalogKind::Service,
            scale,
            seed,
        }
    }

    /// Generates the catalogue. Deterministic: equal specs build bit-identical
    /// catalogues.
    pub fn build(&self) -> Catalog {
        match self.kind {
            CatalogKind::Standard => Catalog::standard(self.scale, self.seed),
            CatalogKind::Mixed => Catalog::mixed(self.scale, self.seed),
            CatalogKind::Drifting => Catalog::drifting(self.scale, self.seed),
            CatalogKind::Extended => Catalog::extended(self.scale, self.seed),
            CatalogKind::Service => Catalog::service(self.scale, self.seed),
        }
    }
}

/// A workload construction request over an already-built catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Uniformly random job queues ([`Workload::random`]).
    Random {
        /// Simultaneously running slots.
        slots: usize,
        /// Jobs queued per slot.
        jobs_per_slot: usize,
        /// Selection seed.
        seed: u64,
    },
    /// Bursty arrivals in waves ([`Workload::bursty`]).
    Bursty {
        /// Simultaneously running slots.
        slots: usize,
        /// Jobs queued per slot.
        jobs_per_slot: usize,
        /// Number of arrival waves.
        waves: usize,
        /// Gap between waves in nanoseconds.
        gap_ns: f64,
        /// Selection seed.
        seed: u64,
    },
    /// The drifting-family workload ([`Workload::drifting`]).
    Drifting {
        /// Simultaneously running slots.
        slots: usize,
        /// Jobs queued per slot.
        jobs_per_slot: usize,
        /// Selection seed.
        seed: u64,
    },
    /// Open-loop request serving ([`Workload::open_loop`]): an arrival trace
    /// dealt round-robin across server queues, with per-request releases and
    /// an optional relative completion deadline.
    OpenLoop {
        /// Server queues (requests are dealt round-robin across them).
        slots: usize,
        /// The arrival trace's shape.
        trace: TraceShape,
        /// Mean offered load in requests per second.
        rate_rps: f64,
        /// Trace duration in seconds.
        duration_s: f64,
        /// Relative completion deadline in nanoseconds (`None` disables
        /// deadline accounting).
        deadline_ns: Option<f64>,
        /// Trace and request-mix seed.
        seed: u64,
    },
}

impl WorkloadSpec {
    /// Expands the spec against a catalogue. Deterministic for equal inputs.
    pub fn build(&self, catalog: &Catalog) -> Workload {
        match *self {
            WorkloadSpec::Random {
                slots,
                jobs_per_slot,
                seed,
            } => Workload::random(catalog, slots, jobs_per_slot, seed),
            WorkloadSpec::Bursty {
                slots,
                jobs_per_slot,
                waves,
                gap_ns,
                seed,
            } => Workload::bursty(catalog, slots, jobs_per_slot, waves, gap_ns, seed),
            WorkloadSpec::Drifting {
                slots,
                jobs_per_slot,
                seed,
            } => Workload::drifting(catalog, slots, jobs_per_slot, seed),
            WorkloadSpec::OpenLoop {
                slots,
                trace,
                rate_rps,
                duration_s,
                deadline_ns,
                seed,
            } => Workload::open_loop(
                catalog,
                slots,
                trace,
                rate_rps,
                duration_s,
                deadline_ns,
                seed,
            ),
        }
    }

    /// The slot count the expanded workload will have (an upper bound for
    /// [`WorkloadSpec::OpenLoop`], whose sparse traces may fill fewer).
    pub fn slots(&self) -> usize {
        match *self {
            WorkloadSpec::Random { slots, .. }
            | WorkloadSpec::Bursty { slots, .. }
            | WorkloadSpec::Drifting { slots, .. }
            | WorkloadSpec::OpenLoop { slots, .. } => slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_spec_builds_each_family() {
        assert_eq!(CatalogSpec::standard(0.04, 7).build().len(), 15);
        assert_eq!(
            CatalogSpec::mixed(0.04, 7).build().len(),
            crate::catalog::mixed_profiles().len()
        );
        assert_eq!(
            CatalogSpec::drifting(0.04, 7).build().len(),
            crate::catalog::drifting_profiles().len()
        );
        assert_eq!(
            CatalogSpec::extended(0.04, 7).build().len(),
            15 + crate::catalog::mixed_profiles().len()
        );
    }

    #[test]
    fn equal_specs_build_identical_catalogues() {
        let a = CatalogSpec::standard(0.04, 11).build();
        let b = CatalogSpec::standard(0.04, 11).build();
        assert_eq!(a.len(), b.len());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.program().to_listing(), y.program().to_listing());
        }
    }

    #[test]
    fn workload_spec_expands_deterministically() {
        let catalog = CatalogSpec::standard(0.04, 7).build();
        let spec = WorkloadSpec::Random {
            slots: 6,
            jobs_per_slot: 2,
            seed: 31,
        };
        assert_eq!(spec.slots(), 6);
        let a = spec.build(&catalog);
        let b = spec.build(&catalog);
        assert_eq!(a.size(), 6);
        for (qa, qb) in a.slots().iter().zip(b.slots()) {
            assert_eq!(qa.jobs(), qb.jobs());
            assert_eq!(qa.release_ns(), qb.release_ns());
        }
    }

    #[test]
    fn bursty_and_drifting_specs_build() {
        let catalog = CatalogSpec::standard(0.04, 7).build();
        let bursty = WorkloadSpec::Bursty {
            slots: 4,
            jobs_per_slot: 1,
            waves: 2,
            gap_ns: 1_000_000.0,
            seed: 5,
        }
        .build(&catalog);
        assert_eq!(bursty.size(), 4);
        assert!(bursty.slots().iter().any(|q| q.release_ns() > 0.0));
        let drifting_catalog = CatalogSpec::drifting(0.02, 7).build();
        let drifting = WorkloadSpec::Drifting {
            slots: 3,
            jobs_per_slot: 1,
            seed: 5,
        }
        .build(&drifting_catalog);
        assert_eq!(drifting.size(), 3);
    }

    #[test]
    fn open_loop_spec_builds_the_serving_family() {
        let catalog = CatalogSpec::service(0.2, 7).build();
        assert_eq!(catalog.len(), crate::catalog::service_profiles().len());
        let spec = WorkloadSpec::OpenLoop {
            slots: 4,
            trace: TraceShape::Bursty,
            rate_rps: 2_000.0,
            duration_s: 0.05,
            deadline_ns: Some(4_000_000.0),
            seed: 13,
        };
        assert_eq!(spec.slots(), 4);
        let a = spec.build(&catalog);
        let b = spec.build(&catalog);
        assert_eq!(a, b);
        assert_eq!(a.size(), 4);
        assert!(a.slots().iter().all(|q| q.deadline_ns().is_some()));
    }
}
