//! # phase-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Sondag & Rajan, CGO 2011, Section IV). Each artifact
//! has a dedicated binary (run with
//! `cargo run -p phase-bench --release --bin <name>`):
//!
//! | paper artifact | binary |
//! |---|---|
//! | Figure 3 (space overhead) | `fig3_space_overhead` |
//! | Figure 4 (time overhead, size-84 workload) | `fig4_time_overhead` |
//! | Table 1 (switches per benchmark) | `table1_switches` |
//! | Figure 5 (cycles per core switch) | `fig5_cycles_per_switch` |
//! | Figure 6 (throughput vs. IPC threshold) | `fig6_ipc_threshold` |
//! | Figure 7 (throughput vs. clustering error) | `fig7_clustering_error` |
//! | Section IV-C2 (lookahead sweep) | `sweep_lookahead` |
//! | Section IV-C4 (minimum-size sweep) | `sweep_min_size` |
//! | Table 2 (fairness vs. stock Linux) | `table2_fairness` |
//! | Figure 8 (speedup vs. fairness trade-off) | `fig8_speedup_fairness` |
//! | Section III / IV-B (mark statistics) | `table_mark_stats` |
//! | Section VII (3-core AMP) | `exp_three_core` |
//! | engine/driver baseline (`BENCH_engine.json`) | `bench_engine` |
//! | online vs. static tuning (`BENCH_online.json`) | `online_vs_static` |
//!
//! The dynamic binaries build an `ExperimentPlan` and fan its cells across
//! the parallel `Driver` of `phase-core`; the Criterion benches
//! (`cargo bench -p phase-bench`) measure the static analyses and both
//! simulator engines on reduced inputs.
//!
//! Every binary honours three environment variables so full and quick runs
//! use the same code path:
//!
//! * `PHASE_BENCH_SLOTS` — workload size (default 18);
//! * `PHASE_BENCH_THREADS` — driver worker threads (default: all hardware
//!   threads);
//! * `PHASE_BENCH_QUICK` — when set, shrinks the catalogue and horizons so a
//!   full regeneration finishes in seconds (used by CI-style smoke runs).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use phase_core::{Driver, ExperimentConfig, PipelineConfig};
use phase_marking::MarkingConfig;
use phase_sched::SimConfig;

/// Reads an environment variable as a number, falling back to a default.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether quick mode is enabled (`PHASE_BENCH_QUICK` set to anything but
/// `0`).
pub fn quick_mode() -> bool {
    std::env::var("PHASE_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The workload size used by the throughput/fairness experiments, honouring
/// `PHASE_BENCH_SLOTS`.
pub fn workload_slots() -> usize {
    env_or("PHASE_BENCH_SLOTS", 18)
}

/// Driver worker threads, honouring `PHASE_BENCH_THREADS` (and therefore the
/// `--threads=N` flag, which sets it). Defaults to all hardware threads.
pub fn threads() -> usize {
    env_or("PHASE_BENCH_THREADS", Driver::default().threads()).max(1)
}

/// The experiment driver every binary fans its plan out with:
/// [`threads`]-many workers.
pub fn driver() -> Driver {
    Driver::new(threads())
}

/// The sampling-interval override for online-tuning binaries, honouring
/// `PHASE_BENCH_INTERVAL` (and therefore the `--interval=N` flag, which sets
/// it): `Some(nanoseconds)` restricts an interval sweep to that single
/// period, `None` (the default) lets the binary sweep its built-in list.
pub fn sample_interval_override_ns() -> Option<f64> {
    std::env::var("PHASE_BENCH_INTERVAL")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|ns: &f64| ns.is_finite() && *ns > 0.0)
}

/// The experiment configuration shared by the dynamic experiments: the
/// paper's machine, the given marking technique, and a continuously fed
/// workload measured over a fixed horizon.
pub fn experiment_config(marking: MarkingConfig) -> ExperimentConfig {
    let quick = quick_mode();
    ExperimentConfig {
        pipeline: PipelineConfig::with_marking(marking),
        workload_slots: workload_slots(),
        jobs_per_slot: if quick { 2 } else { 6 },
        catalog_scale: if quick { 0.2 } else { 1.0 },
        threads: threads(),
        sim: SimConfig {
            horizon_ns: Some(if quick { 8_000_000.0 } else { 40_000_000.0 }),
            ..SimConfig::default()
        },
        ..ExperimentConfig::default()
    }
}

/// The marking variants shown in the paper's Figure 3 / Figure 4 overhead
/// plots: every basic-block, interval, and loop variant of Table 2.
pub fn overhead_variants() -> Vec<MarkingConfig> {
    MarkingConfig::table2_variants()
}

/// Parses the standard regeneration-binary command line, then prints the
/// standard header. Every binary accepts:
///
/// * `--help` / `-h` — print the artifact description and flags, then exit;
/// * `--quick` / `-q` — same as setting `PHASE_BENCH_QUICK=1`: shrink the
///   catalogue and simulation horizon so the run finishes in seconds;
/// * `--slots=N` — same as `PHASE_BENCH_SLOTS=N`: the workload size used by
///   the throughput/fairness experiments;
/// * `--threads=N` — same as `PHASE_BENCH_THREADS=N`: how many worker
///   threads the parallel experiment driver fans cells across (default: all
///   hardware threads);
/// * `--interval=N` — same as `PHASE_BENCH_INTERVAL=N`: the online tuner's
///   hardware-counter sampling period in nanoseconds. Binaries that sweep
///   the sampling interval (`online_vs_static`) restrict the sweep to this
///   single value; binaries without an online policy ignore it.
///
/// Flags override the corresponding environment variables, and the variables
/// are how the parsed values reach [`experiment_config`] / [`driver`], so
/// full and quick runs share one code path.
pub fn init(artifact: &str, description: &str) {
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{artifact}");
                println!("{description}");
                println!();
                println!("USAGE: [--quick] [--slots=N] [--threads=N] [--interval=N]");
                println!("  --quick, -q   reduced catalogue/horizon (env: PHASE_BENCH_QUICK=1)");
                println!(
                    "  --slots=N     workload size (env: PHASE_BENCH_SLOTS; \
                     default varies per artifact)"
                );
                println!(
                    "  --threads=N   driver worker threads (env: PHASE_BENCH_THREADS; \
                     default: all hardware threads)"
                );
                println!(
                    "  --interval=N  online sampling period in ns (env: PHASE_BENCH_INTERVAL; \
                     default: sweep the binary's built-in list)"
                );
                std::process::exit(0);
            }
            "--quick" | "-q" => std::env::set_var("PHASE_BENCH_QUICK", "1"),
            other => {
                if let Some(n) = other.strip_prefix("--slots=") {
                    match n.parse::<usize>() {
                        Ok(slots) if slots > 0 => {
                            std::env::set_var("PHASE_BENCH_SLOTS", slots.to_string());
                            continue;
                        }
                        _ => {
                            eprintln!("invalid --slots value: {n} (expected a positive integer)");
                            std::process::exit(2);
                        }
                    }
                }
                if let Some(n) = other.strip_prefix("--threads=") {
                    match n.parse::<usize>() {
                        Ok(threads) if threads > 0 => {
                            std::env::set_var("PHASE_BENCH_THREADS", threads.to_string());
                            continue;
                        }
                        _ => {
                            eprintln!("invalid --threads value: {n} (expected a positive integer)");
                            std::process::exit(2);
                        }
                    }
                }
                if let Some(n) = other.strip_prefix("--interval=") {
                    match n.parse::<f64>() {
                        Ok(ns) if ns.is_finite() && ns > 0.0 => {
                            std::env::set_var("PHASE_BENCH_INTERVAL", n);
                            continue;
                        }
                        _ => {
                            eprintln!(
                                "invalid --interval value: {n} (expected nanoseconds as a \
                                 positive number)"
                            );
                            std::process::exit(2);
                        }
                    }
                }
                eprintln!("unrecognized argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    print_header(artifact, description);
}

/// Prints the standard header used by every regeneration binary.
pub fn print_header(artifact: &str, description: &str) {
    println!("== {artifact} ==");
    println!("{description}");
    if quick_mode() {
        println!("(quick mode: reduced catalogue and horizon)");
    }
    println!("(driver: {} worker threads)", threads());
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_or_falls_back_to_default() {
        std::env::remove_var("PHASE_BENCH_TEST_VALUE");
        assert_eq!(env_or("PHASE_BENCH_TEST_VALUE", 7usize), 7);
        std::env::set_var("PHASE_BENCH_TEST_VALUE", "12");
        assert_eq!(env_or("PHASE_BENCH_TEST_VALUE", 7usize), 12);
        std::env::remove_var("PHASE_BENCH_TEST_VALUE");
    }

    #[test]
    fn experiment_config_uses_requested_marking() {
        let config = experiment_config(MarkingConfig::interval(45));
        assert_eq!(config.pipeline.marking, MarkingConfig::interval(45));
        assert!(config.sim.horizon_ns.is_some());
        assert!(config.threads >= 1);
    }

    #[test]
    fn thread_count_honours_the_environment() {
        std::env::set_var("PHASE_BENCH_THREADS", "3");
        assert_eq!(threads(), 3);
        assert_eq!(driver().threads(), 3);
        std::env::set_var("PHASE_BENCH_THREADS", "0");
        assert_eq!(threads(), 1, "zero clamps to one worker");
        std::env::remove_var("PHASE_BENCH_THREADS");
        assert!(threads() >= 1);
    }

    #[test]
    fn overhead_variants_match_table2() {
        assert_eq!(overhead_variants().len(), 18);
    }

    #[test]
    fn interval_override_honours_the_environment() {
        std::env::remove_var("PHASE_BENCH_INTERVAL");
        assert_eq!(sample_interval_override_ns(), None);
        std::env::set_var("PHASE_BENCH_INTERVAL", "250000");
        assert_eq!(sample_interval_override_ns(), Some(250_000.0));
        std::env::set_var("PHASE_BENCH_INTERVAL", "-5");
        assert_eq!(sample_interval_override_ns(), None, "negative is rejected");
        std::env::remove_var("PHASE_BENCH_INTERVAL");
    }
}
