//! # phase-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Sondag & Rajan, CGO 2011, Section IV). Each artifact
//! has a dedicated binary (run with
//! `cargo run -p phase-bench --release --bin <name>`):
//!
//! | paper artifact | binary |
//! |---|---|
//! | Figure 3 (space overhead) | `fig3_space_overhead` |
//! | Figure 4 (time overhead, size-84 workload) | `fig4_time_overhead` |
//! | Table 1 (switches per benchmark) | `table1_switches` |
//! | Figure 5 (cycles per core switch) | `fig5_cycles_per_switch` |
//! | Figure 6 (throughput vs. IPC threshold) | `fig6_ipc_threshold` |
//! | Figure 7 (throughput vs. clustering error) | `fig7_clustering_error` |
//! | Section IV-C2 (lookahead sweep) | `sweep_lookahead` |
//! | Section IV-C4 (minimum-size sweep) | `sweep_min_size` |
//! | Table 2 (fairness vs. stock Linux) | `table2_fairness` |
//! | Figure 8 (speedup vs. fairness trade-off) | `fig8_speedup_fairness` |
//! | Section III / IV-B (mark statistics) | `table_mark_stats` |
//! | Section VII (3-core AMP) | `exp_three_core` |
//! | engine/driver baseline (`BENCH_engine.json`) | `bench_engine` |
//! | online vs. static tuning (`BENCH_online.json`) | `online_vs_static` |
//! | every study + cold/warm store benchmark (`BENCH_study.json`) | `run_studies` |
//! | tuning-service cold/warm + eviction (`BENCH_serve.json`) | `bench_serve` |
//! | open-loop serving latency + coalescing storm (`BENCH_load.json`) | `bench_load` |
//!
//! Every study binary is a thin declarative spec (see [`studies`]) over the
//! shared spec-driven runner of `phase-core` (`run_study`): the spec expands
//! into an `ExperimentPlan`, the cells fan across the parallel `Driver`
//! through the content-addressed `ArtifactStore`, and the unified
//! [`StudyReport`] is rendered to the legacy table text and written as
//! `BENCH_<study>.json`. `run_studies` executes all thirteen studies against
//! one shared store and records the cold-versus-warm sweep wall-clock in
//! `BENCH_study.json`. The Criterion benches (`cargo bench -p phase-bench`)
//! measure the static analyses and both simulator engines on reduced inputs.
//!
//! Every binary honours these environment variables (mirrored by CLI flags)
//! so full and quick runs use the same code path:
//!
//! * `PHASE_BENCH_SLOTS` — workload size (default varies per study);
//! * `PHASE_BENCH_THREADS` — driver worker threads (default: all hardware
//!   threads);
//! * `PHASE_BENCH_QUICK` — when set, shrinks the catalogue and horizons so a
//!   full regeneration finishes in seconds (used by CI-style smoke runs);
//! * `PHASE_BENCH_PERF` — when set, pins `bench_engine`'s scale, slots,
//!   seeds and sample count (the sims/sec perf-gate profile; overrides
//!   quick/slots);
//! * `PHASE_BENCH_OUT_DIR` — where `BENCH_*.json` reports are written
//!   (default: the current directory);
//! * `PHASE_BENCH_INTERVAL` — restricts the online sampling-interval sweep
//!   to one period.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::path::PathBuf;

use phase_core::{Driver, ExperimentConfig, JsonValue, PipelineConfig, StudyReport};
use phase_marking::MarkingConfig;
use phase_sched::SimConfig;

pub mod studies;

/// How an environment variable parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvParse<T> {
    /// The variable is not set.
    Unset,
    /// The variable parsed.
    Parsed(T),
    /// The variable is set but does not parse as the expected type; the raw
    /// value is carried for the error message.
    Malformed(String),
}

/// Classifies an environment variable without losing the malformed case.
pub fn env_parse<T: std::str::FromStr>(name: &str) -> EnvParse<T> {
    match std::env::var(name) {
        Err(_) => EnvParse::Unset,
        Ok(raw) => match raw.parse() {
            Ok(value) => EnvParse::Parsed(value),
            Err(_) => EnvParse::Malformed(raw),
        },
    }
}

/// Reads an environment variable as a number, falling back to a default.
///
/// A set-but-unparsable value is *not* silently swallowed: a loud warning
/// naming the variable and the rejected value goes to stderr before the
/// default is used, so `PHASE_BENCH_SLOTS=1o` can no longer masquerade as a
/// deliberate default-sized run.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    match env_parse(name) {
        EnvParse::Unset => default,
        EnvParse::Parsed(value) => value,
        EnvParse::Malformed(raw) => {
            eprintln!(
                "WARNING: environment variable {name}={raw:?} does not parse as {}; \
                 falling back to the default",
                std::any::type_name::<T>()
            );
            default
        }
    }
}

/// Whether quick mode is enabled (`PHASE_BENCH_QUICK` set to anything but
/// `0`).
pub fn quick_mode() -> bool {
    std::env::var("PHASE_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Whether the pinned performance profile is enabled (`PHASE_BENCH_PERF` set
/// to anything but `0`, or the `--perf` flag). Perf runs pin the scale, slot
/// count, seeds and sample count so `BENCH_engine.json` sims/sec numbers are
/// comparable across runs and against the checked-in baseline; the profile
/// overrides `--quick` and `--slots`.
pub fn perf_mode() -> bool {
    std::env::var("PHASE_BENCH_PERF")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The workload size used by the throughput/fairness experiments, honouring
/// `PHASE_BENCH_SLOTS`.
pub fn workload_slots() -> usize {
    env_or("PHASE_BENCH_SLOTS", 18)
}

/// Driver worker threads, honouring `PHASE_BENCH_THREADS` (and therefore the
/// `--threads=N` flag, which sets it). Defaults to all hardware threads.
pub fn threads() -> usize {
    env_or("PHASE_BENCH_THREADS", Driver::default().threads()).max(1)
}

/// The experiment driver every binary fans its plan out with:
/// [`threads`]-many workers.
pub fn driver() -> Driver {
    Driver::new(threads())
}

/// The sampling-interval override for online-tuning binaries, honouring
/// `PHASE_BENCH_INTERVAL` (and therefore the `--interval=N` flag, which sets
/// it): `Some(nanoseconds)` restricts an interval sweep to that single
/// period, `None` (the default) lets the binary sweep its built-in list.
pub fn sample_interval_override_ns() -> Option<f64> {
    std::env::var("PHASE_BENCH_INTERVAL")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|ns: &f64| ns.is_finite() && *ns > 0.0)
}

/// The output directory for `BENCH_*.json` reports, honouring
/// `PHASE_BENCH_OUT_DIR` (and therefore the `--out=PATH` flag, which sets
/// it). `None` means the current directory, the legacy behaviour.
pub fn out_dir() -> Option<PathBuf> {
    std::env::var("PHASE_BENCH_OUT_DIR").ok().map(PathBuf::from)
}

/// Where a bench binary should dump its captured trace as NDJSON, honouring
/// `PHASE_BENCH_TRACE_OUT` (and therefore the `--trace-out=PATH` flag, which
/// sets it). `None` (the default) leaves tracing off.
pub fn trace_out() -> Option<PathBuf> {
    std::env::var("PHASE_BENCH_TRACE_OUT")
        .ok()
        .filter(|path| !path.is_empty())
        .map(PathBuf::from)
}

/// Writes the given trace records to `path` as deterministic NDJSON (one
/// record per line, sorted by logical coordinate by the trace crate).
pub fn write_trace_ndjson(
    path: &std::path::Path,
    records: &[phase_trace::TraceRecord],
) -> std::io::Result<()> {
    write_report_file(path, &phase_core::trace_export::render_ndjson(records))
}

/// The parsed harness settings every study binary runs under. Binaries fill
/// this from the environment (after `init` folded the flags in); tests build
/// it directly so they never race on process-global environment variables.
#[derive(Debug, Clone, Default)]
pub struct BenchSettings {
    /// Reduced catalogue and horizon (`--quick` / `PHASE_BENCH_QUICK`).
    pub quick: bool,
    /// Pinned performance profile (`--perf` / `PHASE_BENCH_PERF`): fixed
    /// scale, slots, seeds and samples for comparable sims/sec numbers;
    /// overrides `quick` and `slots` where the two conflict.
    pub perf: bool,
    /// Workload-size override (`--slots=N` / `PHASE_BENCH_SLOTS`); `None`
    /// uses each study's own default.
    pub slots: Option<usize>,
    /// Driver worker threads (`--threads=N` / `PHASE_BENCH_THREADS`).
    pub threads: usize,
    /// Online sampling-interval override (`--interval=N` /
    /// `PHASE_BENCH_INTERVAL`).
    pub interval_override_ns: Option<f64>,
    /// Where `BENCH_*.json` reports go (`--out=PATH` /
    /// `PHASE_BENCH_OUT_DIR`); `None` writes to the current directory.
    pub out_dir: Option<PathBuf>,
    /// Where a captured trace is dumped as NDJSON (`--trace-out=PATH` /
    /// `PHASE_BENCH_TRACE_OUT`); `None` leaves tracing off.
    pub trace_out: Option<PathBuf>,
}

impl BenchSettings {
    /// Settings as configured by the environment (and therefore the CLI
    /// flags, which `init` translates into environment variables).
    pub fn from_env() -> Self {
        Self {
            quick: quick_mode(),
            perf: perf_mode(),
            slots: match env_parse("PHASE_BENCH_SLOTS") {
                EnvParse::Parsed(slots) => Some(slots),
                EnvParse::Unset => None,
                EnvParse::Malformed(_) => {
                    // `env_or` warns; keep one warning path.
                    let _: usize = env_or("PHASE_BENCH_SLOTS", 0);
                    None
                }
            },
            threads: threads(),
            interval_override_ns: sample_interval_override_ns(),
            out_dir: out_dir(),
            trace_out: trace_out(),
        }
    }

    /// Fixed settings for tests: quick mode, an explicit slot count, two
    /// driver workers, no output directory.
    pub fn for_tests(slots: usize) -> Self {
        Self {
            quick: true,
            perf: false,
            slots: Some(slots),
            threads: 2,
            interval_override_ns: None,
            out_dir: None,
            trace_out: None,
        }
    }

    /// The workload size: the override if set, otherwise the study default.
    pub fn slots_or(&self, default: usize) -> usize {
        self.slots.unwrap_or(default)
    }

    /// The settings as JSON metadata fields, shared by every report header
    /// (`write_study_report_with` and `run_studies`' `BENCH_study.json`).
    pub fn meta_json(&self) -> Vec<(&'static str, JsonValue)> {
        vec![
            ("quick", JsonValue::Bool(self.quick)),
            ("perf", JsonValue::Bool(self.perf)),
            (
                "slots",
                self.slots.map(JsonValue::from).unwrap_or(JsonValue::Null),
            ),
            ("threads", JsonValue::from(self.threads.max(1))),
        ]
    }

    /// Where a report file should be written.
    pub fn out_path(&self, file_name: &str) -> PathBuf {
        match &self.out_dir {
            Some(dir) => dir.join(file_name),
            None => PathBuf::from(file_name),
        }
    }
}

/// Writes a study report as `BENCH_<study>.json` (under `--out` if given),
/// wrapping the unified schema with the harness settings it ran under.
/// Returns the path written.
pub fn write_study_report(
    report: &StudyReport,
    settings: &BenchSettings,
) -> std::io::Result<PathBuf> {
    write_study_report_with(report, settings, &[])
}

/// Like [`write_study_report`], with study-specific headline fields spliced
/// into the JSON after the settings.
pub fn write_study_report_with(
    report: &StudyReport,
    settings: &BenchSettings,
    extra: &[(&str, JsonValue)],
) -> std::io::Result<PathBuf> {
    let mut meta = settings.meta_json();
    meta.extend(extra.iter().map(|(name, value)| (*name, value.clone())));
    let path = settings.out_path(&format!("BENCH_{}.json", report.study));
    write_report_file(&path, &report.to_json_with(&meta).render())?;
    Ok(path)
}

/// Writes a report file, creating the `--out` directory first — every binary
/// honouring the flag must behave the same when the directory is absent.
pub fn write_report_file(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

/// Prints the path a report was written to, or fails the whole run: a
/// missing `BENCH_*.json` must exit nonzero (as the legacy `.expect()` did)
/// so CI's smoke step cannot pass while uploading a partial artifact set.
pub fn announce_report(result: std::io::Result<PathBuf>, what: &str) {
    match result {
        Ok(path) => println!("wrote {}", path.display()),
        Err(error) => {
            eprintln!("failed to write {what}: {error}");
            std::process::exit(1);
        }
    }
}

/// Compares a freshly produced engine report against a committed baseline
/// document at the given relative tolerance, returning one message per
/// regression (empty means the gate passes).
///
/// Rows are matched by `label`; `sims_per_sec` is the gated metric, and a
/// regression is a current value more than `tolerance` below the baseline.
/// Labels present on only one side are ignored, so adding a workload (or
/// retiring one) never fails the gate by itself — only slowing down a
/// measurement both documents share does. Faster-than-baseline rows always
/// pass; refreshing the committed baseline after a real improvement is a
/// deliberate, separate commit.
pub fn perf_regressions(current: &JsonValue, baseline: &JsonValue, tolerance: f64) -> Vec<String> {
    fn rows(doc: &JsonValue) -> Vec<(String, f64)> {
        doc.get("rows")
            .and_then(JsonValue::as_array)
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        Some((
                            row.get("label")?.as_str()?.to_string(),
                            row.get("sims_per_sec")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
    let current = rows(current);
    rows(baseline)
        .into_iter()
        .filter_map(|(label, base)| {
            let (_, now) = current.iter().find(|(l, _)| *l == label)?;
            (base > 0.0 && *now < base * (1.0 - tolerance)).then(|| {
                format!(
                    "{label}: sims/sec {now:.3} is {:.1}% below the baseline {base:.3} \
                     (tolerance {:.0}%)",
                    (1.0 - now / base) * 100.0,
                    tolerance * 100.0
                )
            })
        })
        .collect()
}

/// The whole body of a standard study binary: parse the command line, build
/// the spec, run it through a fresh artifact store, print the rendered
/// tables, and write the `BENCH_<study>.json` report.
pub fn run_study_main(
    artifact: &str,
    description: &str,
    build: impl FnOnce(&BenchSettings) -> phase_core::StudySpec,
) {
    let settings = init(artifact, description);
    let spec = build(&settings);
    let store = phase_core::ArtifactStore::new();
    let report = phase_core::run_study(&spec, &store, settings.threads.max(1));
    print!("{}", studies::render(&report));
    let written = write_study_report(&report, &settings);
    announce_report(written, &format!("BENCH_{}.json", report.study));
}

/// The experiment configuration shared by the dynamic experiments: the
/// paper's machine, the given marking technique, and a continuously fed
/// workload measured over a fixed horizon.
pub fn experiment_config(marking: MarkingConfig) -> ExperimentConfig {
    experiment_config_with(&BenchSettings::from_env(), marking)
}

/// Like [`experiment_config`], but from explicit settings instead of the
/// process environment (what the study specs and their tests use).
pub fn experiment_config_with(
    settings: &BenchSettings,
    marking: MarkingConfig,
) -> ExperimentConfig {
    let quick = settings.quick;
    ExperimentConfig {
        pipeline: PipelineConfig::with_marking(marking),
        workload_slots: settings.slots_or(18),
        jobs_per_slot: if quick { 2 } else { 6 },
        catalog_scale: if quick { 0.2 } else { 1.0 },
        threads: settings.threads.max(1),
        sim: SimConfig {
            horizon_ns: Some(if quick { 8_000_000.0 } else { 40_000_000.0 }),
            ..SimConfig::default()
        },
        ..ExperimentConfig::default()
    }
}

/// The marking variants shown in the paper's Figure 3 / Figure 4 overhead
/// plots: every basic-block, interval, and loop variant of Table 2.
pub fn overhead_variants() -> Vec<MarkingConfig> {
    MarkingConfig::table2_variants()
}

/// Parses the standard regeneration-binary command line, then prints the
/// standard header and returns the resulting [`BenchSettings`]. Every binary
/// accepts:
///
/// * `--help` / `-h` — print the artifact description and flags, then exit;
/// * `--quick` / `-q` — same as setting `PHASE_BENCH_QUICK=1`: shrink the
///   catalogue and simulation horizon so the run finishes in seconds;
/// * `--perf` — same as setting `PHASE_BENCH_PERF=1`: the pinned performance
///   profile (fixed scale, slots, seeds and samples) used by the sims/sec
///   perf gate; overrides `--quick` and `--slots` where they conflict;
/// * `--slots=N` — same as `PHASE_BENCH_SLOTS=N`: the workload size used by
///   the throughput/fairness experiments;
/// * `--threads=N` — same as `PHASE_BENCH_THREADS=N`: how many worker
///   threads the parallel experiment driver fans cells across (default: all
///   hardware threads);
/// * `--interval=N` — same as `PHASE_BENCH_INTERVAL=N`: the online tuner's
///   hardware-counter sampling period in nanoseconds. Binaries that sweep
///   the sampling interval (`online_vs_static`) restrict the sweep to this
///   single value; binaries without an online policy ignore it;
/// * `--out=PATH` — same as `PHASE_BENCH_OUT_DIR=PATH`: the directory
///   `BENCH_*.json` reports are written to (default: the current directory).
///
/// Flags override the corresponding environment variables, and the variables
/// are how the parsed values reach [`experiment_config`] / [`driver`], so
/// full and quick runs share one code path.
pub fn init(artifact: &str, description: &str) -> BenchSettings {
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{artifact}");
                println!("{description}");
                println!();
                println!(
                    "USAGE: [--quick] [--perf] [--slots=N] [--threads=N] [--interval=N] \
                     [--out=PATH] [--trace-out=PATH]"
                );
                println!("  --quick, -q   reduced catalogue/horizon (env: PHASE_BENCH_QUICK=1)");
                println!(
                    "  --perf        pinned scale/seed perf profile for sims/sec gating \
                     (env: PHASE_BENCH_PERF=1)"
                );
                println!(
                    "  --slots=N     workload size (env: PHASE_BENCH_SLOTS; \
                     default varies per artifact)"
                );
                println!(
                    "  --threads=N   driver worker threads (env: PHASE_BENCH_THREADS; \
                     default: all hardware threads)"
                );
                println!(
                    "  --interval=N  online sampling period in ns (env: PHASE_BENCH_INTERVAL; \
                     default: sweep the binary's built-in list)"
                );
                println!(
                    "  --out=PATH    directory for BENCH_*.json reports \
                     (env: PHASE_BENCH_OUT_DIR; default: current directory)"
                );
                println!(
                    "  --trace-out=PATH  enable structured tracing and dump the run's \
                     timeline as NDJSON (env: PHASE_BENCH_TRACE_OUT; default: off)"
                );
                std::process::exit(0);
            }
            "--quick" | "-q" => std::env::set_var("PHASE_BENCH_QUICK", "1"),
            "--perf" => std::env::set_var("PHASE_BENCH_PERF", "1"),
            other => {
                if let Some(n) = other.strip_prefix("--slots=") {
                    match n.parse::<usize>() {
                        Ok(slots) if slots > 0 => {
                            std::env::set_var("PHASE_BENCH_SLOTS", slots.to_string());
                            continue;
                        }
                        _ => {
                            eprintln!("invalid --slots value: {n} (expected a positive integer)");
                            std::process::exit(2);
                        }
                    }
                }
                if let Some(n) = other.strip_prefix("--threads=") {
                    match n.parse::<usize>() {
                        Ok(threads) if threads > 0 => {
                            std::env::set_var("PHASE_BENCH_THREADS", threads.to_string());
                            continue;
                        }
                        _ => {
                            eprintln!("invalid --threads value: {n} (expected a positive integer)");
                            std::process::exit(2);
                        }
                    }
                }
                if let Some(n) = other.strip_prefix("--interval=") {
                    match n.parse::<f64>() {
                        Ok(ns) if ns.is_finite() && ns > 0.0 => {
                            std::env::set_var("PHASE_BENCH_INTERVAL", n);
                            continue;
                        }
                        _ => {
                            eprintln!(
                                "invalid --interval value: {n} (expected nanoseconds as a \
                                 positive number)"
                            );
                            std::process::exit(2);
                        }
                    }
                }
                if let Some(path) = other.strip_prefix("--out=") {
                    if path.is_empty() {
                        eprintln!("invalid --out value: expected a directory path");
                        std::process::exit(2);
                    }
                    std::env::set_var("PHASE_BENCH_OUT_DIR", path);
                    continue;
                }
                if let Some(path) = other.strip_prefix("--trace-out=") {
                    if path.is_empty() {
                        eprintln!("invalid --trace-out value: expected a file path");
                        std::process::exit(2);
                    }
                    std::env::set_var("PHASE_BENCH_TRACE_OUT", path);
                    continue;
                }
                eprintln!("unrecognized argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    print_header(artifact, description);
    BenchSettings::from_env()
}

/// Prints the standard header used by every regeneration binary.
pub fn print_header(artifact: &str, description: &str) {
    println!("== {artifact} ==");
    println!("{description}");
    if quick_mode() {
        println!("(quick mode: reduced catalogue and horizon)");
    }
    println!("(driver: {} worker threads)", threads());
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_or_falls_back_to_default() {
        std::env::remove_var("PHASE_BENCH_TEST_VALUE");
        assert_eq!(env_or("PHASE_BENCH_TEST_VALUE", 7usize), 7);
        std::env::set_var("PHASE_BENCH_TEST_VALUE", "12");
        assert_eq!(env_or("PHASE_BENCH_TEST_VALUE", 7usize), 12);
        std::env::remove_var("PHASE_BENCH_TEST_VALUE");
    }

    #[test]
    fn malformed_env_values_are_detected_not_swallowed() {
        std::env::set_var("PHASE_BENCH_TEST_MALFORMED", "1o");
        assert_eq!(
            env_parse::<usize>("PHASE_BENCH_TEST_MALFORMED"),
            EnvParse::Malformed("1o".to_string()),
            "the malformed case is distinguishable from unset"
        );
        // `env_or` warns on stderr and then falls back.
        assert_eq!(env_or("PHASE_BENCH_TEST_MALFORMED", 7usize), 7);
        std::env::remove_var("PHASE_BENCH_TEST_MALFORMED");
        assert_eq!(
            env_parse::<usize>("PHASE_BENCH_TEST_MALFORMED"),
            EnvParse::Unset
        );
    }

    #[test]
    fn experiment_config_uses_requested_marking() {
        let config = experiment_config(MarkingConfig::interval(45));
        assert_eq!(config.pipeline.marking, MarkingConfig::interval(45));
        assert!(config.sim.horizon_ns.is_some());
        assert!(config.threads >= 1);
    }

    #[test]
    fn thread_count_honours_the_environment() {
        std::env::set_var("PHASE_BENCH_THREADS", "3");
        assert_eq!(threads(), 3);
        assert_eq!(driver().threads(), 3);
        std::env::set_var("PHASE_BENCH_THREADS", "0");
        assert_eq!(threads(), 1, "zero clamps to one worker");
        std::env::remove_var("PHASE_BENCH_THREADS");
        assert!(threads() >= 1);
    }

    #[test]
    fn overhead_variants_match_table2() {
        assert_eq!(overhead_variants().len(), 18);
    }

    #[test]
    fn perf_regressions_gate_on_sims_per_sec_by_label() {
        let doc = |fig4: f64, bursty: f64| {
            phase_core::json::parse(&format!(
                r#"{{"rows": [
                    {{"label": "fig4/event", "sims_per_sec": {fig4}}},
                    {{"label": "bursty/event", "sims_per_sec": {bursty}}}
                ]}}"#
            ))
            .expect("valid test document")
        };
        // Equal, faster, and within-tolerance rows all pass.
        assert!(perf_regressions(&doc(10.0, 5.0), &doc(10.0, 5.0), 0.20).is_empty());
        assert!(perf_regressions(&doc(12.0, 4.1), &doc(10.0, 5.0), 0.20).is_empty());
        // A row more than 20% below the baseline fails, naming the label.
        let regressions = perf_regressions(&doc(7.0, 5.0), &doc(10.0, 5.0), 0.20);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("fig4/event"), "{regressions:?}");
        // Labels on only one side never fail the gate.
        let extra =
            phase_core::json::parse(r#"{"rows": [{"label": "new/event", "sims_per_sec": 1.0}]}"#)
                .unwrap();
        assert!(perf_regressions(&extra, &doc(10.0, 5.0), 0.20).is_empty());
        assert!(perf_regressions(&doc(10.0, 5.0), &extra, 0.20).is_empty());
    }

    #[test]
    fn interval_override_honours_the_environment() {
        std::env::remove_var("PHASE_BENCH_INTERVAL");
        assert_eq!(sample_interval_override_ns(), None);
        std::env::set_var("PHASE_BENCH_INTERVAL", "250000");
        assert_eq!(sample_interval_override_ns(), Some(250_000.0));
        std::env::set_var("PHASE_BENCH_INTERVAL", "-5");
        assert_eq!(sample_interval_override_ns(), None, "negative is rejected");
        std::env::remove_var("PHASE_BENCH_INTERVAL");
    }
}
