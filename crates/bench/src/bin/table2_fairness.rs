//! Table 2: fairness comparison against the stock scheduler for every
//! technique variant — percent decrease in max-flow, max-stretch, and
//! average process time (positive numbers are improvements).

use phase_bench::{experiment_config, init};
use phase_core::{comparison_plan, comparison_result, prepare_workload, ExperimentPlan, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Table 2 — fairness comparison to the stock scheduler",
        "Percent decrease relative to the stock run on the same queues; positive numbers are\n\
         improvements. Every variant's baseline and tuned cells form one plan fanned across\n\
         the driver. Pass PHASE_BENCH_QUICK=1 for a reduced run.",
    );

    let variants = if phase_bench::quick_mode() {
        vec![
            MarkingConfig::basic_block(15, 0),
            MarkingConfig::interval(45),
            MarkingConfig::loop_level(45),
        ]
    } else {
        MarkingConfig::table2_variants()
    };

    let mut plan = ExperimentPlan::new();
    let mut per_variant = Vec::new();
    for marking in &variants {
        let config = experiment_config(*marking);
        let prepared = prepare_workload(&config);
        plan.extend(comparison_plan(marking.to_string(), &config, &prepared));
        per_variant.push((config, prepared));
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "Technique",
        "Max-Flow %",
        "Max-Stretch %",
        "Avg. Time %",
        "Throughput %",
    ]);
    let mut best: Option<(String, f64)> = None;
    for (marking, (config, prepared)) in variants.iter().zip(&per_variant) {
        let result = comparison_result(&marking.to_string(), &outcome, config, prepared)
            .expect("plan holds both cells of the variant");
        let avg = result.fairness.avg_time_decrease_pct;
        if best.as_ref().map(|(_, b)| avg > *b).unwrap_or(true) {
            best = Some((marking.to_string(), avg));
        }
        table.add_row(vec![
            marking.to_string(),
            format!("{:.2}", result.fairness.max_flow_decrease_pct),
            format!("{:.2}", result.fairness.max_stretch_decrease_pct),
            format!("{avg:.2}"),
            format!("{:.2}", result.throughput.improvement_pct),
        ]);
    }
    println!("{}", table.render());
    if let Some((name, avg)) = best {
        println!("best average-process-time reduction: {name} at {avg:.2}%");
    }
    println!(
        "paper: interval and loop variants dominate the basic-block variants (several of\n\
         which regress); the best run (Loop[45]) improves max-flow by 12.04%, max-stretch by\n\
         20.41%, and average process time by 35.95%."
    );
}
