//! Table 2: fairness comparison against the stock scheduler for every
//! technique variant — percent decrease in max-flow, max-stretch, and
//! average process time (positive numbers are improvements). Thin spec over
//! the shared study runner (`phase_bench::studies::table2`).

fn main() {
    phase_bench::run_study_main(
        "Table 2 — fairness comparison to the stock scheduler",
        "Percent decrease relative to the stock run on the same queues; positive numbers are\n\
         improvements. Every variant's baseline and tuned cells form one plan fanned across\n\
         the driver. Pass PHASE_BENCH_QUICK=1 for a reduced run.",
        phase_bench::studies::table2,
    );
}
