//! Tiered-artifact-store benchmark and CI gate (`BENCH_store.json`).
//!
//! Four measurements over one realistically warm store (a full `table1`
//! study run):
//!
//! * **spill format** — bytes on disk and spill/load wall-clock for the
//!   binary phase-pack spill versus the legacy JSON spill, over the same
//!   three stages the JSON format can represent (typings, IPC profiles,
//!   isolated runtimes). Gated: binary must be ≥3x smaller and ≥5x faster
//!   to load.
//! * **warm restart** — a fresh store reloaded from the full binary spill
//!   reruns the study: rows must be bit-identical to the cold run and the
//!   typings stage must record zero misses (the whole pipeline persisted).
//! * **remote cache** — a second store warm-started purely through
//!   `artifact-get` over live TCP against a phase-serve instance wrapping
//!   the warm store; per-get hit latency reported as p50/p99.
//!
//! Gate failures exit nonzero so CI fails visibly.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use phase_bench::studies;
use phase_core::{run_study, ArtifactStore, JsonValue, SpillFormat};
use phase_serve::{remote_warm_start, serve_tcp_with, TuningService, WireConfig};

/// Binary spill must be at least this many times smaller than JSON.
const SIZE_GATE: f64 = 3.0;
/// Binary spill must load at least this many times faster than JSON.
const LOAD_GATE: f64 = 5.0;

/// The stages both formats can represent — the fair comparison set.
const JSON_STAGES: [&str; 3] = ["typings", "ipc_profiles", "isolated_runtimes"];

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("phase-bench-store-{name}-{}", std::process::id()))
}

fn dir_bytes(dir: &Path, files: &[String]) -> u64 {
    files
        .iter()
        .map(|file| {
            std::fs::metadata(dir.join(file))
                .map(|m| m.len())
                .unwrap_or(0)
        })
        .sum()
}

/// Best-of-N wall seconds for loading `dir` into a fresh store; also returns
/// the artifacts loaded (identical on every repeat).
fn measure_load(dir: &Path, repeats: usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut loaded = 0;
    for _ in 0..repeats {
        let store = ArtifactStore::new();
        let start = Instant::now();
        let report = store.load_spill_report(dir).expect("load spill");
        best = best.min(start.elapsed().as_secs_f64());
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        loaded = report.loaded;
    }
    (best, loaded)
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted[rank]
}

fn main() {
    let settings = phase_bench::init(
        "Artifact-store benchmark (BENCH_store.json)",
        "Measures the binary phase-pack spill against the legacy JSON spill\n\
         (bytes on disk, spill/load MB/s), the cold-vs-warm-restart study\n\
         wall clock, and remote artifact-cache hit latency over live TCP.\n\
         Gates: binary >=3x smaller and >=5x faster to load than JSON.",
    );
    let threads = settings.threads.max(1);
    let repeats = if settings.quick { 5 } else { 9 };

    // --- Cold pass: one full study warms every store stage. ---
    let store = Arc::new(ArtifactStore::new());
    let spec = studies::table1(&settings);
    let cold_start = Instant::now();
    let cold_report = run_study(&spec, &store, threads);
    let cold_s = cold_start.elapsed().as_secs_f64();
    println!(
        "cold {}: {:.4}s ({} rows)",
        spec.name,
        cold_s,
        cold_report.rows.len()
    );

    // --- Spill both formats. ---
    let binary_dir = temp_dir("binary");
    let json_dir = temp_dir("json");
    for dir in [&binary_dir, &json_dir] {
        std::fs::remove_dir_all(dir).ok();
    }
    let spill_once = |dir: &Path, format: SpillFormat| {
        let start = Instant::now();
        store.spill_to_dir_with(dir, format).expect("spill");
        start.elapsed().as_secs_f64()
    };
    let binary_spill_s = spill_once(&binary_dir, SpillFormat::Binary);
    let json_spill_s = spill_once(&json_dir, SpillFormat::Json);

    // Byte footprint over the stages both formats carry.
    let binary_files: Vec<String> = JSON_STAGES.iter().map(|s| format!("{s}.ppk")).collect();
    let json_files: Vec<String> = JSON_STAGES.iter().map(|s| format!("{s}.json")).collect();
    let binary_bytes = dir_bytes(&binary_dir, &binary_files);
    let json_bytes = dir_bytes(&json_dir, &json_files);
    assert!(binary_bytes > 0 && json_bytes > 0, "both spills wrote data");

    // Load timing over the *same* artifact set: a copy of the binary spill
    // restricted to the JSON-covered stages (the loader treats a missing
    // stage file as empty).
    let binary3_dir = temp_dir("binary3");
    std::fs::remove_dir_all(&binary3_dir).ok();
    std::fs::create_dir_all(&binary3_dir).expect("create binary3 dir");
    for file in binary_files
        .iter()
        .chain(std::iter::once(&"manifest.json".to_string()))
    {
        std::fs::copy(binary_dir.join(file), binary3_dir.join(file)).expect("copy spill file");
    }
    let (binary_load_s, binary_loaded) = measure_load(&binary3_dir, repeats);
    let (json_load_s, json_loaded) = measure_load(&json_dir, repeats);
    assert_eq!(
        binary_loaded, json_loaded,
        "both formats must offer the same artifacts"
    );

    let size_ratio = json_bytes as f64 / binary_bytes as f64;
    let load_speedup = json_load_s / binary_load_s.max(1e-12);
    let mb = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    println!(
        "spill ({} artifacts over {:?}): binary {} B, json {} B ({size_ratio:.2}x smaller)",
        binary_loaded, JSON_STAGES, binary_bytes, json_bytes
    );
    println!(
        "load: binary {:.2} MB/s ({binary_load_s:.5}s), json {:.2} MB/s ({json_load_s:.5}s) \
         ({load_speedup:.2}x faster)",
        mb(binary_bytes) / binary_load_s.max(1e-12),
        mb(json_bytes) / json_load_s.max(1e-12),
    );

    // --- Warm restart from the full binary spill. ---
    let warm_store = Arc::new(ArtifactStore::new());
    let warm_load_start = Instant::now();
    let warm_report_load = warm_store
        .load_spill_report(&binary_dir)
        .expect("warm load");
    let warm_load_s = warm_load_start.elapsed().as_secs_f64();
    assert!(
        warm_report_load.errors.is_empty(),
        "{:?}",
        warm_report_load.errors
    );
    let warm_start = Instant::now();
    let warm_report = run_study(&spec, &warm_store, threads);
    let warm_s = warm_start.elapsed().as_secs_f64();
    let rows_identical = warm_report.rows == cold_report.rows;
    assert!(
        rows_identical,
        "warm rows must be bit-identical to cold rows"
    );
    let warm_typings_misses = warm_store
        .snapshot()
        .stage("typings")
        .map(|s| s.misses)
        .unwrap_or(0);
    assert_eq!(warm_typings_misses, 0, "warm restart recomputed typings");
    println!(
        "warm restart: load {warm_load_s:.4}s + study {warm_s:.4}s \
         (cold {cold_s:.4}s, {:.2}x), typings misses 0",
        cold_s / (warm_load_s + warm_s).max(1e-12)
    );

    // --- Remote artifact cache over live TCP. ---
    let origin = Arc::new(TuningService::with_store(Arc::clone(&store), threads));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    {
        let origin = Arc::clone(&origin);
        std::thread::spawn(move || {
            serve_tcp_with(
                &origin,
                listener,
                None,
                WireConfig {
                    connection_workers: 2,
                    ..WireConfig::default()
                },
            )
        });
    }
    let remote_store = Arc::new(ArtifactStore::new());
    let sync_start = Instant::now();
    let sync = remote_warm_start(addr, &remote_store).expect("remote warm start");
    let sync_s = sync_start.elapsed().as_secs_f64();
    assert!(sync.errors.is_empty(), "{:?}", sync.errors);
    assert!(sync.transferred > 0, "the remote sync moved artifacts");
    let mut latencies = sync.get_latency_ns.clone();
    latencies.sort_unstable();
    let (hit_p50_ns, hit_p99_ns) = (percentile(&latencies, 50.0), percentile(&latencies, 99.0));
    println!(
        "remote cache: {} artifacts in {sync_s:.4}s, get p50 {:.1}us p99 {:.1}us",
        sync.transferred,
        hit_p50_ns as f64 / 1e3,
        hit_p99_ns as f64 / 1e3
    );

    // --- Gates + report. ---
    let size_gate_ok = size_ratio >= SIZE_GATE;
    let load_gate_ok = load_speedup >= LOAD_GATE;
    let format_row = |label: &str, bytes: u64, spill_s: f64, load_s: f64| {
        JsonValue::object()
            .field("label", label)
            .field("bytes", bytes)
            .field("spill_s", spill_s)
            .field("load_s", load_s)
            .field("load_mb_per_s", mb(bytes) / load_s.max(1e-12))
    };
    let mut doc = JsonValue::object();
    for (name, value) in settings.meta_json() {
        doc = doc.field(name, value);
    }
    let doc = doc
        .field("artifacts_compared", binary_loaded)
        .field(
            "formats",
            vec![
                format_row("binary", binary_bytes, binary_spill_s, binary_load_s),
                format_row("json", json_bytes, json_spill_s, json_load_s),
            ],
        )
        .field("size_ratio", size_ratio)
        .field("load_speedup", load_speedup)
        .field("size_gate", SIZE_GATE)
        .field("load_gate", LOAD_GATE)
        .field("size_gate_ok", size_gate_ok)
        .field("load_gate_ok", load_gate_ok)
        .field(
            "warm_restart",
            JsonValue::object()
                .field("cold_study_s", cold_s)
                .field("load_s", warm_load_s)
                .field("warm_study_s", warm_s)
                .field("speedup", cold_s / (warm_load_s + warm_s).max(1e-12))
                .field("artifacts_loaded", warm_report_load.loaded)
                .field("rows_identical", rows_identical)
                .field("typings_misses", warm_typings_misses),
        )
        .field(
            "remote_cache",
            JsonValue::object()
                .field("artifacts", sync.transferred)
                .field("admitted", sync.admitted)
                .field("sync_s", sync_s)
                .field("hit_p50_ns", hit_p50_ns)
                .field("hit_p99_ns", hit_p99_ns),
        );
    let path = settings.out_path("BENCH_store.json");
    let written = phase_bench::write_report_file(&path, &doc.render()).map(|()| path);
    phase_bench::announce_report(written, "BENCH_store.json");

    for dir in [&binary_dir, &binary3_dir, &json_dir] {
        std::fs::remove_dir_all(dir).ok();
    }

    if !size_gate_ok {
        eprintln!(
            "STORE GATE FAILED: binary spill only {size_ratio:.2}x smaller than JSON \
             (gate {SIZE_GATE}x)"
        );
        std::process::exit(1);
    }
    if !load_gate_ok {
        eprintln!(
            "STORE GATE FAILED: binary spill only {load_speedup:.2}x faster to load \
             than JSON (gate {LOAD_GATE}x)"
        );
        std::process::exit(1);
    }
    println!(
        "store gate passed: {size_ratio:.2}x smaller (>={SIZE_GATE}x), \
         {load_speedup:.2}x faster to load (>={LOAD_GATE}x)"
    );
}
