//! The unified study runner: every table and figure of the evaluation in one
//! invocation, sharing one artifact store — plus the cold-versus-warm
//! benchmark of that store.
//!
//! All thirteen studies run in sequence against a single
//! [`ArtifactStore`](phase_core::ArtifactStore), so cross-study reuse (the
//! shared catalogues, the config-independent baseline twins and isolated
//! runtimes, identical cells across sweeps) happens naturally; each study's
//! `BENCH_<study>.json` is written as it completes. Afterwards the
//! `table1`/`fig6`/`fig7` sweeps are run *again* on the warm store and
//! `BENCH_study.json` records the cold-versus-warm wall-clock per study, the
//! end-to-end wall-clock, and the final store counters — the regression
//! artifact CI tracks for the caching layer.
//!
//! Set `PHASE_BENCH_SPILL=DIR` to persist the store across runs: if `DIR`
//! already holds a spill it is reloaded *before* the cold pass (so a cached
//! CI run skips the recomputation entirely), and the store is spilled back
//! to `DIR` (binary phase-pack format, every stage of the pipeline) after
//! the studies finish. With `PHASE_BENCH_ASSERT_WARM=1` the run additionally
//! asserts that the preloaded spill answered every typing lookup — zero
//! misses — which is how CI proves its artifact cache actually warmed the
//! run.

use std::time::Instant;

use phase_bench::studies;
use phase_core::{run_study, ArtifactStore, JsonValue, StudyReport};

fn main() {
    let settings = phase_bench::init(
        "Unified study runner (BENCH_study.json)",
        "Runs every study against one shared artifact store, writes each BENCH_<study>.json,\n\
         then re-runs the table1/fig6/fig7 sweeps warm and records the cold-vs-warm\n\
         wall-clock win in BENCH_study.json.",
    );
    let threads = settings.threads.max(1);
    let store = ArtifactStore::new();

    // --- Optional warm start from a previous run's spill. ---
    let spill_dir = std::env::var("PHASE_BENCH_SPILL")
        .ok()
        .map(std::path::PathBuf::from);
    let mut preloaded = 0;
    if let Some(dir) = &spill_dir {
        if dir.exists() {
            match store.load_spill_report(dir) {
                Ok(report) => {
                    preloaded = report.loaded;
                    println!(
                        "preloaded {} artifacts from {} ({} skipped)",
                        report.loaded,
                        dir.display(),
                        report.skipped
                    );
                    for error in &report.errors {
                        eprintln!("spill preload: {error}");
                    }
                }
                Err(error) => eprintln!("failed to preload spill: {error}"),
            }
        }
    }
    let total_start = Instant::now();

    // --- Cold pass: every study, one shared store. ---
    let mut cold: Vec<StudyReport> = Vec::new();
    for spec in studies::all(&settings) {
        println!("--- {} ---", spec.title);
        let report = run_study(&spec, &store, threads);
        print!("{}", studies::render(&report));
        // The online study's report carries the same drifting-family
        // headline fields the standalone binary writes, so BENCH_online.json
        // has one schema whichever producer made it.
        let extra = if report.study == "online" {
            let (static_speedup, best_online) = studies::online_drifting_headline(&report);
            vec![
                ("drifting_static_speedup", JsonValue::Float(static_speedup)),
                (
                    "drifting_best_online_speedup",
                    JsonValue::Float(best_online),
                ),
            ]
        } else {
            Vec::new()
        };
        let written = phase_bench::write_study_report_with(&report, &settings, &extra);
        phase_bench::announce_report(written, &format!("BENCH_{}.json", report.study));
        println!();
        cold.push(report);
    }

    // --- Warm pass: the headline sweeps again, answered from the store. ---
    let warm_specs = vec![
        studies::table1(&settings),
        studies::fig6(&settings),
        studies::fig7(&settings),
    ];
    let mut sweeps = Vec::new();
    for spec in warm_specs {
        let cold_report = cold
            .iter()
            .find(|r| r.study == spec.name)
            .expect("warm study ran cold first");
        let warm_report = run_study(&spec, &store, threads);
        assert_eq!(
            warm_report.rows, cold_report.rows,
            "{}: warm rows must be bit-identical to the cold rows",
            spec.name
        );
        let speedup = cold_report.elapsed_s / warm_report.elapsed_s.max(1e-9);
        println!(
            "{}: cold {:.4}s -> warm {:.4}s ({speedup:.2}x)",
            spec.name, cold_report.elapsed_s, warm_report.elapsed_s
        );
        sweeps.push((
            spec.name.clone(),
            cold_report.elapsed_s,
            warm_report.elapsed_s,
        ));
    }

    // --- A cache-warmed run must actually run warm: with the assertion
    // enabled (CI's cache-hit path), a preloaded store that still recomputed
    // typings means the spill key or format regressed — fail loudly.
    let assert_warm = std::env::var("PHASE_BENCH_ASSERT_WARM").is_ok_and(|v| v != "0");
    if assert_warm {
        let typings = store
            .snapshot()
            .stage("typings")
            .expect("the store tracks a typings stage");
        assert!(
            preloaded > 0,
            "PHASE_BENCH_ASSERT_WARM=1 but no spill was preloaded"
        );
        assert_eq!(
            typings.misses, 0,
            "PHASE_BENCH_ASSERT_WARM=1 but the run recomputed {} typings",
            typings.misses
        );
        println!("warm assertion passed: {preloaded} artifacts preloaded, typings misses == 0");
    }

    // --- Spill the store back for the next run. ---
    if let Some(dir) = &spill_dir {
        match store.spill_to_dir(dir) {
            Ok(files) => println!(
                "spilled {} artifact files to {}",
                files.len(),
                dir.display()
            ),
            Err(error) => eprintln!("failed to spill artifacts: {error}"),
        }
    }

    // --- BENCH_study.json. ---
    let total_s = total_start.elapsed().as_secs_f64();
    let mut doc = JsonValue::object();
    for (name, value) in settings.meta_json() {
        doc = doc.field(name, value);
    }
    let doc = doc
        .field("studies", cold.len())
        .field("total_s", total_s)
        .field(
            "cold_elapsed_s",
            cold.iter().fold(JsonValue::object(), |doc, report| {
                doc.field(&report.study, report.elapsed_s)
            }),
        )
        .field(
            "warm_sweeps",
            sweeps
                .iter()
                .map(|(name, cold_s, warm_s)| {
                    JsonValue::object()
                        .field("study", name.as_str())
                        .field("cold_s", *cold_s)
                        .field("warm_s", *warm_s)
                        .field("speedup", *cold_s / warm_s.max(1e-9))
                })
                .collect::<Vec<_>>(),
        )
        .field("store", store.snapshot().to_json());
    let path = settings.out_path("BENCH_study.json");
    let written = phase_bench::write_report_file(&path, &doc.render()).map(|()| path);
    phase_bench::announce_report(written, "BENCH_study.json");
}
