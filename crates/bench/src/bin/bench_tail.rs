//! Datacenter tail-latency scenario family: open-loop service-pipeline
//! requests (NIC-poll → network-stack → application phases) arriving on
//! Poisson, bursty, and diurnal traces, each carrying a completion deadline,
//! swept over machine asymmetries × scheduling policies.
//!
//! Policies are judged the way a serving system is: per-request completion
//! latency charged from the *scheduled release* (the moment the open-loop
//! client sent the request), read out as p50/p99/p999 and the fraction of
//! requests that blew their SLO budget. The sweep pits an asymmetry-blind
//! static core partition against the paper's marked phase-based tuner and
//! the online interval-sampling tuner on identical request streams; the run
//! fails unless at least one sweep cell shows a phase-aware policy beating
//! the partition on p99. Thin spec over the shared study runner
//! (`phase_bench::studies::tail`); writes `BENCH_tail.json`, bit-identical
//! across `--threads` settings.

use phase_bench::studies;
use phase_core::{run_study, ArtifactStore, JsonValue};

fn main() {
    let settings = phase_bench::init(
        "Datacenter tail latency (BENCH_tail.json)",
        "Open-loop service pipelines (NIC poll -> network stack -> application) on Poisson,\n\
         bursty, and diurnal arrival traces with per-request deadlines, swept over machine\n\
         asymmetry x scheduling policy and judged on p50/p99/p999 completion latency and\n\
         SLO-violation fraction. Latency is charged from each request's scheduled release.",
    );
    let spec = studies::tail(&settings);
    let store = ArtifactStore::new();
    let report = run_study(&spec, &store, settings.threads.max(1));
    print!("{}", studies::render(&report));

    let wins = studies::tail_phase_aware_wins(&report);
    assert!(
        wins > 0,
        "no sweep cell had a phase-aware policy beat static partitioning on p99 — \
         the study's headline regressed"
    );

    let extra = [("phase_aware_p99_wins", JsonValue::UInt(wins as u64))];
    let written = phase_bench::write_study_report_with(&report, &settings, &extra);
    phase_bench::announce_report(written, "BENCH_tail.json");
}
