//! Online-versus-static head-to-head: the stock scheduler, the static
//! phase-mark tuner, and the interval-sampling online tuner (`phase-online`)
//! on four workload families — standard (Table 1 catalogue), mixed
//! (dense phase-transition traffic), bursty (arrival gaps), and drifting
//! (unmarkable programs whose flavour mix rotates mid-run).
//!
//! The headline is the drifting family: its programs have no blocks the
//! static pipeline can type, so `tuned` degenerates to `stock` (speedup
//! exactly 1.0) while the online tuner — sampling hardware counters instead
//! of reading marks — still finds and places the phases. Thin spec over the
//! shared study runner (`phase_bench::studies::online`); writes
//! `BENCH_online.json` for CI trend tracking.

use phase_bench::studies;
use phase_core::{run_study, ArtifactStore, JsonValue};

fn main() {
    let settings = phase_bench::init(
        "Online vs. static tuning (BENCH_online.json)",
        "Stock vs. static phase marks vs. online interval sampling on the standard, mixed,\n\
         bursty, and drifting families; the online policy is swept over sampling interval\n\
         x phase count. Drifting programs are unmarkable, so the static tuner collapses\n\
         to stock there while the online tuner keeps tuning.",
    );
    let spec = studies::online(&settings);
    let store = ArtifactStore::new();
    let report = run_study(&spec, &store, settings.threads.max(1));
    print!("{}", studies::render(&report));

    let (static_speedup, best_online) = studies::online_drifting_headline(&report);
    let extra = [
        ("drifting_static_speedup", JsonValue::Float(static_speedup)),
        (
            "drifting_best_online_speedup",
            JsonValue::Float(best_online),
        ),
    ];
    let written = phase_bench::write_study_report_with(&report, &settings, &extra);
    phase_bench::announce_report(written, "BENCH_online.json");
}
