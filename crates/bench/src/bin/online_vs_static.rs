//! Online-versus-static head-to-head: the stock scheduler, the static
//! phase-mark tuner, and the interval-sampling online tuner (`phase-online`)
//! on four workload families — standard (Table 1 catalogue), mixed
//! (dense phase-transition traffic), bursty (arrival gaps), and drifting
//! (unmarkable programs whose flavour mix rotates mid-run).
//!
//! The online policy is swept over sampling-interval length × phase-table
//! size (`--interval=N` restricts the sweep to one period). Every family is
//! continuously fed (the paper's queue-per-slot rule) and measured over a
//! fixed horizon: *speedup* is the throughput ratio against the stock cell,
//! fairness is max-stretch over isolated runtimes, and the switch counts
//! show how much affinity traffic each tuner generates.
//!
//! The headline is the drifting family: its programs have no blocks the
//! static pipeline can type, so `tuned` degenerates to `stock` (speedup
//! exactly 1.0) while the online tuner — sampling hardware counters instead
//! of reading marks — still finds and places the phases. Writes
//! `BENCH_online.json` for CI trend tracking.

use std::collections::HashMap;

use phase_amp::MachineSpec;
use phase_bench::init;
use phase_core::{
    baseline_catalog, build_slots, cell_seed, fairness_of, instrument_catalog, isolated_runtimes,
    CellSpec, ExperimentPlan, PipelineConfig, PlannedWorkload, Policy, TextTable,
};
use phase_online::OnlineConfig;
use phase_runtime::TunerConfig;
use phase_sched::SimConfig;
use phase_workload::{Catalog, Workload};

/// One family's prepared inputs.
struct Family {
    name: &'static str,
    planned: PlannedWorkload,
    isolated_ns: HashMap<String, f64>,
}

fn main() {
    init(
        "Online vs. static tuning (BENCH_online.json)",
        "Stock vs. static phase marks vs. online interval sampling on the standard, mixed,\n\
         bursty, and drifting families; the online policy is swept over sampling interval\n\
         x phase count. Drifting programs are unmarkable, so the static tuner collapses\n\
         to stock there while the online tuner keeps tuning.",
    );

    let quick = phase_bench::quick_mode();
    let machine = MachineSpec::core2_quad_amp();
    let slots = phase_bench::env_or("PHASE_BENCH_SLOTS", 8);
    let jobs_per_slot = if quick { 5 } else { 6 };
    // The catalogue scale of the markable families; the drifting family keeps
    // its full-length phases even in quick mode — collapsing them under the
    // sampling interval would measure lag, not tuning.
    let scale = if quick { 0.2 } else { 1.0 };
    let horizon_ns = 40_000_000.0;
    let base_seed = 0xD61F7;

    let intervals: Vec<f64> = match phase_bench::sample_interval_override_ns() {
        Some(ns) => vec![ns],
        None if quick => vec![100_000.0, 200_000.0],
        None => vec![100_000.0, 200_000.0, 400_000.0],
    };
    let phase_counts: &[usize] = if quick { &[2, 8] } else { &[2, 4, 8] };

    let sim = SimConfig {
        horizon_ns: Some(horizon_ns),
        ..SimConfig::default()
    };
    let pipeline = PipelineConfig::paper_best();
    let threads = phase_bench::threads();

    // --- Prepare the four families. Per-catalogue work (instrumentation and
    // the per-benchmark isolated runs behind the stretch metric) is done once
    // per catalogue; the standard and bursty families share it. ---
    let standard_catalog = Catalog::standard(scale, 7);
    let mixed_catalog = Catalog::mixed(scale, 7);
    let drifting_catalog = Catalog::drifting(1.0, 7);
    struct Prepared {
        instrumented: Vec<std::sync::Arc<phase_marking::InstrumentedProgram>>,
        plain: Vec<std::sync::Arc<phase_marking::InstrumentedProgram>>,
        isolated_ns: HashMap<String, f64>,
    }
    let prepare_catalog = |catalog: &Catalog| -> Prepared {
        let instrumented = instrument_catalog(catalog, &machine, &pipeline);
        let plain = baseline_catalog(catalog);
        let isolated_ns = isolated_runtimes(catalog, &plain, &machine, &sim, threads);
        Prepared {
            instrumented,
            plain,
            isolated_ns,
        }
    };
    let standard_prepared = prepare_catalog(&standard_catalog);
    let mixed_prepared = prepare_catalog(&mixed_catalog);
    let drifting_prepared = prepare_catalog(&drifting_catalog);
    let family = |name: &'static str,
                  catalog: &Catalog,
                  prepared: &Prepared,
                  workload: &Workload|
     -> Family {
        Family {
            name,
            planned: PlannedWorkload {
                name: name.to_string(),
                baseline_slots: build_slots(workload, catalog, &prepared.plain),
                tuned_slots: build_slots(workload, catalog, &prepared.instrumented),
            },
            isolated_ns: prepared.isolated_ns.clone(),
        }
    };
    let families = vec![
        family(
            "standard",
            &standard_catalog,
            &standard_prepared,
            &Workload::random(&standard_catalog, slots, jobs_per_slot, 31),
        ),
        family(
            "mixed",
            &mixed_catalog,
            &mixed_prepared,
            &Workload::random(&mixed_catalog, slots, jobs_per_slot, 31),
        ),
        family(
            "bursty",
            &standard_catalog,
            &standard_prepared,
            &Workload::bursty(&standard_catalog, slots, jobs_per_slot, 3, 5_000_000.0, 31),
        ),
        family(
            "drifting",
            &drifting_catalog,
            &drifting_prepared,
            &Workload::drifting(&drifting_catalog, slots, jobs_per_slot, 31),
        ),
    ];

    // --- One plan over everything: per family, a stock cell, a static-marks
    // cell, and one online cell per (interval, phase-count) combination, all
    // on identical queues and seeds (the paper's identical-queues rule). ---
    let mut policies = vec![Policy::Stock, Policy::Tuned(TunerConfig::paper_table1())];
    for &interval in &intervals {
        for &phases in phase_counts {
            policies.push(Policy::Online(
                OnlineConfig::default()
                    .with_interval_ns(interval)
                    .with_max_phases(phases),
            ));
        }
    }
    let mut plan = ExperimentPlan::new();
    for (index, family) in families.iter().enumerate() {
        let seed = cell_seed(base_seed, index as u64);
        for policy in &policies {
            let slots = if policy.runs_instrumented() {
                family.planned.tuned_slots.clone()
            } else {
                family.planned.baseline_slots.clone()
            };
            plan.push(CellSpec {
                group: family.name.to_string(),
                label: format!("{}/{}", family.name, policy_tag(policy)),
                machine: machine.clone(),
                slots,
                policy: *policy,
                sim: SimConfig { seed, ..sim },
            });
        }
    }
    let outcome = phase_bench::driver().run(plan);

    // --- Report. ---
    let mut table = TextTable::new(vec![
        "Family",
        "Policy",
        "Speedup vs stock",
        "Done",
        "Max-stretch",
        "Switches",
        "Phases/Retunes",
    ]);
    let mut json_families = Vec::new();
    for family in &families {
        let cells = outcome.group(family.name);
        let stock = cells
            .iter()
            .find(|c| c.policy.name() == "stock")
            .expect("stock cell ran");
        let stock_instructions = stock.result.total_instructions;
        let mut static_speedup = 0.0;
        let mut best_online_speedup = 0.0;
        let mut json_online = Vec::new();
        for cell in &cells {
            let speedup = cell.result.total_instructions as f64 / stock_instructions as f64;
            let fairness = fairness_of(&cell.result, &family.isolated_ns);
            let detail = match (&cell.policy, cell.online_stats) {
                (Policy::Online(config), Some(stats)) => {
                    if speedup > best_online_speedup {
                        best_online_speedup = speedup;
                    }
                    json_online.push(format!(
                        "{{\"interval_ns\": {}, \"max_phases\": {}, \"speedup\": {:.4}, \
                         \"max_stretch\": {:.3}, \"switches\": {}, \"retunes\": {}}}",
                        config.sample_interval_ns,
                        config.max_phases,
                        speedup,
                        fairness.max_stretch,
                        cell.result.total_core_switches,
                        stats.retunes,
                    ));
                    format!("{}/{}", stats.phases_created, stats.retunes)
                }
                _ => {
                    if cell.policy.name() == "tuned" {
                        static_speedup = speedup;
                    }
                    String::new()
                }
            };
            table.add_row(vec![
                family.name.to_string(),
                policy_tag(&cell.policy),
                format!("{speedup:.3}x"),
                format!("{}", cell.result.completed_count()),
                format!("{:.2}", fairness.max_stretch),
                format!("{}", cell.result.total_core_switches),
                detail,
            ]);
        }
        json_families.push(format!(
            "  \"{}\": {{\n    \"stock_instructions\": {},\n    \
             \"static_speedup\": {:.4},\n    \"best_online_speedup\": {:.4},\n    \
             \"online\": [{}]\n  }}",
            family.name,
            stock_instructions,
            static_speedup,
            best_online_speedup,
            json_online.join(", "),
        ));
    }
    println!("{}", table.render());

    // The claim this binary exists to check: on the drifting (unmarkable)
    // family the static tuner collapses to the stock scheduler while the
    // online tuner still wins.
    let drifting = families.last().expect("drifting family present");
    let drifting_cells = outcome.group(drifting.name);
    let drifting_stock = drifting_cells[0].result.total_instructions as f64;
    let drifting_static = drifting_cells
        .iter()
        .find(|c| c.policy.name() == "tuned")
        .map(|c| c.result.total_instructions as f64 / drifting_stock)
        .unwrap_or(0.0);
    let drifting_best = drifting_cells
        .iter()
        .filter(|c| c.policy.name() == "online")
        .map(|c| c.result.total_instructions as f64 / drifting_stock)
        .fold(0.0, f64::max);
    println!(
        "drifting family: static speedup {drifting_static:.4} (collapsed to stock), \
         best online speedup {drifting_best:.4}"
    );

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"slots\": {slots},\n  \"horizon_ns\": {horizon_ns},\n\
         {},\n  \"drifting_static_speedup\": {drifting_static:.4},\n  \
         \"drifting_best_online_speedup\": {drifting_best:.4}\n}}\n",
        json_families.join(",\n"),
    );
    std::fs::write("BENCH_online.json", &json).expect("write BENCH_online.json");
    println!("wrote BENCH_online.json");
}

/// Short per-cell tag: `stock`, `tuned`, or `online[i=<µs>,p=<phases>]`.
fn policy_tag(policy: &Policy) -> String {
    match policy {
        Policy::Online(config) => format!(
            "online[i={}us,p={}]",
            (config.sample_interval_ns / 1_000.0).round() as u64,
            config.max_phases
        ),
        other => other.name().to_string(),
    }
}
