//! Engine/driver baseline: wall-clock comparison of the round-based and
//! event-driven engines (on the Figure 4 workload and on a bursty-arrival
//! workload) and of the sequential versus parallel experiment driver (on the
//! Table 1 isolation plan). Writes the numbers to `BENCH_engine.json` for CI
//! trend tracking.
//!
//! Two optional environment variables record an *external* binary-level
//! comparison against the pre-refactor sequential seed path (measured by
//! timing `table1_switches --quick` built from the previous commit and from
//! the current tree, e.g. via `git worktree`):
//!
//! * `PHASE_BENCH_TABLE1_SEED_S` — seed binary wall-clock in seconds;
//! * `PHASE_BENCH_TABLE1_NEW_S` — current binary wall-clock in seconds.
//!
//! When both are set, `table1_quick_speedup_vs_seed` is included in the JSON.

use std::sync::Arc;
use std::time::Instant;

use phase_amp::MachineSpec;
use phase_bench::{experiment_config, init};
use phase_core::{
    baseline_catalog, build_slots, prepare_program, run_with_hook, CellSpec, Driver,
    ExperimentPlan, JsonValue, PipelineConfig, Policy, TextTable,
};
use phase_marking::MarkingConfig;
use phase_runtime::TunerConfig;
use phase_sched::{EngineKind, NullHook, SimConfig, SimResult};
use phase_workload::{Catalog, Workload};

/// Smallest wall-clock of `samples` runs, in seconds.
fn time_best<F: FnMut() -> SimResult>(samples: usize, mut run: F) -> (f64, SimResult) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..samples {
        let start = Instant::now();
        let result = run();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(result);
    }
    (best, last.expect("at least one sample"))
}

fn main() {
    let settings = init(
        "Engine + driver baseline (BENCH_engine.json)",
        "Round-based vs. event-driven engine on the fig4 workload and a bursty workload,\n\
         and sequential vs. --threads=4 driver on the table1 isolation plan.",
    );

    let quick = phase_bench::quick_mode();
    let samples = if quick { 3 } else { 5 };
    let machine = MachineSpec::core2_quad_amp();
    let sim = experiment_config(MarkingConfig::paper_best()).sim;

    // --- Engine comparison on the Figure 4 workload (dense queues). ---
    let scale = if quick { 0.1 } else { 0.5 };
    let slots = phase_bench::env_or("PHASE_BENCH_SLOTS", if quick { 18 } else { 84 });
    let catalog = Catalog::standard(scale, 7);
    let plain = baseline_catalog(&catalog);
    let fig4_workload = Workload::random(&catalog, slots, 1, 84);
    let fig4_slots = build_slots(&fig4_workload, &catalog, &plain);
    let engine_run =
        |engine: EngineKind, job_slots: &Vec<Vec<phase_sched::JobSpec>>, horizon: Option<f64>| {
            let config = SimConfig {
                engine,
                horizon_ns: horizon,
                ..sim
            };
            run_with_hook(
                "engine-bench",
                machine.clone(),
                job_slots.clone(),
                NullHook,
                config,
            )
        };
    let (fig4_round_s, fig4_round) = time_best(samples, || {
        engine_run(EngineKind::RoundBased, &fig4_slots, sim.horizon_ns)
    });
    let (fig4_event_s, fig4_event) = time_best(samples, || {
        engine_run(EngineKind::EventDriven, &fig4_slots, sim.horizon_ns)
    });
    assert_eq!(
        fig4_round.total_instructions, fig4_event.total_instructions,
        "engines must agree on the fig4 workload"
    );

    // --- Engine comparison on a bursty workload (long idle gaps between
    // waves: the event engine's best case). ---
    let bursty_workload = Workload::bursty(&catalog, slots.min(12), 1, 4, 50_000_000.0, 21);
    let bursty_slots = build_slots(&bursty_workload, &catalog, &plain);
    let (bursty_round_s, bursty_round) = time_best(samples, || {
        engine_run(EngineKind::RoundBased, &bursty_slots, None)
    });
    let (bursty_event_s, bursty_event) = time_best(samples, || {
        engine_run(EngineKind::EventDriven, &bursty_slots, None)
    });
    assert_eq!(
        bursty_round.total_instructions, bursty_event.total_instructions,
        "engines must agree on the bursty workload"
    );

    // --- Driver comparison on the Table 1 isolation plan. ---
    let table1_scale = if quick { 0.2 } else { 1.0 };
    let table1_catalog = Catalog::standard(table1_scale, 7);
    let pipeline = PipelineConfig::with_marking(MarkingConfig::paper_best());
    let table1_plan = || {
        let mut plan = ExperimentPlan::new();
        for bench in table1_catalog.benchmarks() {
            let instrumented = Arc::new(prepare_program(bench.program(), &machine, &pipeline));
            plan.push(CellSpec::isolation(
                bench.name(),
                instrumented,
                machine.clone(),
                Policy::Tuned(TunerConfig::paper_table1()),
                SimConfig::default(),
            ));
        }
        plan
    };
    // `time_setup = false` times the plan run alone; `true` also times the
    // instrumentation, the closest in-process equivalent of timing the whole
    // `table1_switches --quick` binary.
    let time_table1 = |threads: usize, time_setup: bool| {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let premade = (!time_setup).then(&table1_plan);
            let start = Instant::now();
            let outcome = Driver::new(threads).run(premade.unwrap_or_else(&table1_plan));
            best = best.min(start.elapsed().as_secs_f64());
            assert_eq!(outcome.aggregate.cells_completed, table1_catalog.len());
        }
        best
    };
    let table1_seq_s = time_table1(1, false);
    let table1_par_s = time_table1(4, false);
    let table1_e2e_seq_s = time_table1(1, true);
    let table1_e2e_par_s = time_table1(4, true);

    let mut table = TextTable::new(vec!["Measurement", "Seconds", "Speedup"]);
    table.add_row(vec![
        "fig4 round-based".into(),
        format!("{fig4_round_s:.4}"),
        String::new(),
    ]);
    table.add_row(vec![
        "fig4 event-driven".into(),
        format!("{fig4_event_s:.4}"),
        format!("{:.2}x", fig4_round_s / fig4_event_s),
    ]);
    table.add_row(vec![
        "bursty round-based".into(),
        format!("{bursty_round_s:.4}"),
        String::new(),
    ]);
    table.add_row(vec![
        "bursty event-driven".into(),
        format!("{bursty_event_s:.4}"),
        format!("{:.2}x", bursty_round_s / bursty_event_s),
    ]);
    table.add_row(vec![
        "table1 driver --threads=1".into(),
        format!("{table1_seq_s:.4}"),
        String::new(),
    ]);
    table.add_row(vec![
        "table1 driver --threads=4".into(),
        format!("{table1_par_s:.4}"),
        format!("{:.2}x", table1_seq_s / table1_par_s),
    ]);
    table.add_row(vec![
        "table1 e2e --threads=1".into(),
        format!("{table1_e2e_seq_s:.4}"),
        String::new(),
    ]);
    table.add_row(vec![
        "table1 e2e --threads=4".into(),
        format!("{table1_e2e_par_s:.4}"),
        format!("{:.2}x", table1_e2e_seq_s / table1_e2e_par_s),
    ]);
    println!("{}", table.render());

    let seed_binary_s: Option<f64> = std::env::var("PHASE_BENCH_TABLE1_SEED_S")
        .ok()
        .and_then(|v| v.parse().ok());
    let new_binary_s: Option<f64> = std::env::var("PHASE_BENCH_TABLE1_NEW_S")
        .ok()
        .and_then(|v| v.parse().ok());

    let mut doc = JsonValue::object()
        .field("quick", quick)
        .field("samples", samples)
        .field("fig4_round_based_s", fig4_round_s)
        .field("fig4_event_driven_s", fig4_event_s)
        .field("fig4_engine_speedup", fig4_round_s / fig4_event_s)
        .field("bursty_round_based_s", bursty_round_s)
        .field("bursty_event_driven_s", bursty_event_s)
        .field("bursty_engine_speedup", bursty_round_s / bursty_event_s)
        .field("table1_threads1_s", table1_seq_s)
        .field("table1_threads4_s", table1_par_s)
        .field("table1_parallel_speedup", table1_seq_s / table1_par_s)
        .field("table1_e2e_threads1_s", table1_e2e_seq_s)
        .field("table1_e2e_threads4_s", table1_e2e_par_s)
        .field(
            "table1_e2e_parallel_speedup",
            table1_e2e_seq_s / table1_e2e_par_s,
        );
    if let (Some(seed), Some(new)) = (seed_binary_s, new_binary_s) {
        if new > 0.0 {
            println!(
                "external binary comparison: seed {seed:.3}s -> current {new:.3}s \
                 ({:.2}x, table1_switches --quick)",
                seed / new
            );
            doc = doc
                .field("table1_quick_seed_binary_s", seed)
                .field("table1_quick_binary_s", new)
                .field("table1_quick_speedup_vs_seed", seed / new);
        }
    }
    let json = doc.render();
    let path = settings.out_path("BENCH_engine.json");
    let written = phase_bench::write_report_file(&path, &json).map(|()| path);
    phase_bench::announce_report(written, "BENCH_engine.json");
    print!("{json}");
}
