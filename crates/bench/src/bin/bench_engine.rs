//! Engine/driver baseline and continuous perf gate: wall-clock sims/sec of
//! the round-based and event-driven engines (on the Figure 4 workload and on
//! a bursty-arrival workload) and of the experiment driver at 1 and 4
//! workers (on the Table 1 isolation plan). A thin spec over the shared
//! study runner — the measurement itself is `StudyMode::EnginePerf` and the
//! report is the unified `StudyReport` schema written to `BENCH_engine.json`.
//!
//! Run with `--perf` (or `PHASE_BENCH_PERF=1`) for the pinned profile the
//! perf gate compares across runs. When `PHASE_BENCH_BASELINE` names a
//! committed `BENCH_engine.json`, the run exits nonzero if any shared row's
//! `sims_per_sec` lands more than 20% below the baseline.

use phase_bench::{announce_report, init, perf_regressions, studies, write_study_report};
use phase_core::{json, run_study, ArtifactStore};

/// Relative sims/sec slack before the gate fails; generous because CI
/// machines are noisy, tight enough to catch a real hot-path regression.
const BASELINE_TOLERANCE: f64 = 0.20;

fn main() {
    let settings = init(
        "Engine + driver baseline (BENCH_engine.json)",
        "Round-based vs. event-driven engine sims/sec on the fig4 and bursty workloads,\n\
         and driver scaling at --threads=1 vs. 4 on the table1 isolation plan.",
    );
    let spec = studies::engine(&settings);
    let store = ArtifactStore::new();
    let report = run_study(&spec, &store, settings.threads.max(1));
    print!("{}", studies::render(&report));
    let written = write_study_report(&report, &settings);
    announce_report(written, "BENCH_engine.json");

    if let Ok(path) = std::env::var("PHASE_BENCH_BASELINE") {
        let contents = match std::fs::read_to_string(&path) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("perf gate: cannot read baseline {path}: {error}");
                std::process::exit(1);
            }
        };
        let baseline = match json::parse(&contents) {
            Ok(baseline) => baseline,
            Err(error) => {
                eprintln!("perf gate: baseline {path} is not valid JSON: {error:?}");
                std::process::exit(1);
            }
        };
        let regressions = perf_regressions(&report.to_json(), &baseline, BASELINE_TOLERANCE);
        if regressions.is_empty() {
            println!(
                "perf gate: OK vs {path} (tolerance {:.0}%)",
                BASELINE_TOLERANCE * 100.0
            );
        } else {
            for regression in &regressions {
                eprintln!("perf regression: {regression}");
            }
            std::process::exit(1);
        }
    }
}
