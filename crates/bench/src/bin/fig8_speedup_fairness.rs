//! Figure 8: the speedup-versus-fairness trade-off — average-process-time
//! reduction (speedup) plotted against max-stretch for each technique
//! variant.

use phase_bench::{experiment_config, init};
use phase_core::{comparison_plan, comparison_result, prepare_workload, ExperimentPlan, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Figure 8 — speedup vs. fairness trade-off",
        "Each row is one technique variant: its average-process-time reduction (speedup) and\n\
         the max-stretch it achieves (lower is fairer). The paper's interval and loop variants\n\
         balance the two; several basic-block variants trade fairness for speedup.",
    );

    let variants = if phase_bench::quick_mode() {
        vec![
            MarkingConfig::basic_block(15, 0),
            MarkingConfig::basic_block(15, 2),
            MarkingConfig::interval(45),
            MarkingConfig::loop_level(45),
        ]
    } else {
        MarkingConfig::table2_variants()
    };

    let mut plan = ExperimentPlan::new();
    let mut per_variant = Vec::new();
    for marking in &variants {
        let config = experiment_config(*marking);
        let prepared = prepare_workload(&config);
        plan.extend(comparison_plan(marking.to_string(), &config, &prepared));
        per_variant.push((config, prepared));
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "Technique",
        "Speedup (avg time reduction %)",
        "Max-stretch (tuned)",
        "Max-stretch (stock)",
    ]);
    for (marking, (config, prepared)) in variants.iter().zip(&per_variant) {
        let result = comparison_result(&marking.to_string(), &outcome, config, prepared)
            .expect("plan holds both cells of the variant");
        table.add_row(vec![
            marking.to_string(),
            format!("{:.2}", result.fairness.avg_time_decrease_pct),
            format!("{:.2}", result.tuned_fairness.max_stretch),
            format!("{:.2}", result.baseline_fairness.max_stretch),
        ]);
    }
    println!("{}", table.render());
}
