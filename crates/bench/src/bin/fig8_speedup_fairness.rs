//! Figure 8: the speedup-versus-fairness trade-off — average-process-time
//! reduction (speedup) plotted against max-stretch for each technique
//! variant. Thin spec over the shared study runner
//! (`phase_bench::studies::fig8`).

fn main() {
    phase_bench::run_study_main(
        "Figure 8 — speedup vs. fairness trade-off",
        "Each row is one technique variant: its average-process-time reduction (speedup) and\n\
         the max-stretch it achieves (lower is fairer). The paper's interval and loop variants\n\
         balance the two; several basic-block variants trade fairness for speedup.",
        phase_bench::studies::fig8,
    );
}
