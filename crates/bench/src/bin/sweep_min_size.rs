//! Section IV-C4: effect of the minimum section size on marks and
//! throughput, for all three granularities.

use phase_bench::{experiment_config, init};
use phase_core::{run_comparison, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Minimum-section-size sweep (Section IV-C4)",
        "Marks inserted and throughput/fairness impact as the minimum section size grows,\n\
         for the basic-block, interval, and loop techniques.",
    );

    let variants = [
        MarkingConfig::basic_block(10, 0),
        MarkingConfig::basic_block(15, 0),
        MarkingConfig::basic_block(20, 0),
        MarkingConfig::interval(30),
        MarkingConfig::interval(45),
        MarkingConfig::interval(60),
        MarkingConfig::loop_level(30),
        MarkingConfig::loop_level(45),
        MarkingConfig::loop_level(60),
    ];

    let mut table = TextTable::new(vec![
        "Technique",
        "Static marks (catalogue)",
        "Throughput improvement %",
        "Avg time reduction %",
    ]);
    for marking in variants {
        let config = experiment_config(marking);
        let static_marks: usize = phase_core::instrument_catalog(
            &phase_workload::Catalog::standard(config.catalog_scale, config.workload_seed),
            &config.machine,
            &config.pipeline,
        )
        .iter()
        .map(|p| p.mark_count())
        .sum();
        let outcome = run_comparison(&config);
        table.add_row(vec![
            marking.to_string(),
            static_marks.to_string(),
            format!("{:.2}", outcome.throughput.improvement_pct),
            format!("{:.2}", outcome.fairness.avg_time_decrease_pct),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: smaller minimum sizes catch more transitions (higher potential gain,\n\
         more overhead); larger minimums may miss small hot loops."
    );
}
