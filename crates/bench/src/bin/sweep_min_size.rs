//! Section IV-C4: effect of the minimum section size on marks and
//! throughput, for all three granularities.

use phase_bench::{experiment_config, init};
use phase_core::{comparison_plan, comparison_result, prepare_workload, ExperimentPlan, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Minimum-section-size sweep (Section IV-C4)",
        "Marks inserted and throughput/fairness impact as the minimum section size grows,\n\
         for the basic-block, interval, and loop techniques; one comparison plan per\n\
         variant, fanned across the driver together.",
    );

    let variants = [
        MarkingConfig::basic_block(10, 0),
        MarkingConfig::basic_block(15, 0),
        MarkingConfig::basic_block(20, 0),
        MarkingConfig::interval(30),
        MarkingConfig::interval(45),
        MarkingConfig::interval(60),
        MarkingConfig::loop_level(30),
        MarkingConfig::loop_level(45),
        MarkingConfig::loop_level(60),
    ];

    let mut plan = ExperimentPlan::new();
    let mut per_variant = Vec::new();
    for marking in variants {
        let config = experiment_config(marking);
        let prepared = prepare_workload(&config);
        plan.extend(comparison_plan(marking.to_string(), &config, &prepared));
        per_variant.push((config, prepared));
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "Technique",
        "Static marks (catalogue)",
        "Throughput improvement %",
        "Avg time reduction %",
    ]);
    for (marking, (config, prepared)) in variants.iter().zip(&per_variant) {
        let result = comparison_result(&marking.to_string(), &outcome, config, prepared)
            .expect("plan holds both cells of the variant");
        let static_marks: usize = prepared.instrumented.iter().map(|p| p.mark_count()).sum();
        table.add_row(vec![
            marking.to_string(),
            static_marks.to_string(),
            format!("{:.2}", result.throughput.improvement_pct),
            format!("{:.2}", result.fairness.avg_time_decrease_pct),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: smaller minimum sizes catch more transitions (higher potential gain,\n\
         more overhead); larger minimums may miss small hot loops."
    );
}
