//! Section IV-C4: effect of the minimum section size on marks and
//! throughput, for all three granularities. Thin spec over the shared study
//! runner (`phase_bench::studies::sweep_min_size`).

fn main() {
    phase_bench::run_study_main(
        "Minimum-section-size sweep (Section IV-C4)",
        "Marks inserted and throughput/fairness impact as the minimum section size grows,\n\
         for the basic-block, interval, and loop techniques; one comparison plan per\n\
         variant, fanned across the driver together.",
        phase_bench::studies::sweep_min_size,
    );
}
