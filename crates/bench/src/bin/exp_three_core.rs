//! Section VII: the 3-core AMP configuration (2 fast, 1 slow) mentioned as
//! already-tested future work; the paper reports results similar to the
//! 4-core machine (~32% speedup).

use phase_amp::MachineSpec;
use phase_bench::{experiment_config, init};
use phase_core::{run_comparison, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "3-core AMP (Section VII)",
        "The best technique (Loop[45]) on the 2-fast/1-slow machine, compared with the\n\
         4-core evaluation machine.",
    );

    let mut table = TextTable::new(vec![
        "Machine",
        "Avg time reduction %",
        "Max-flow %",
        "Max-stretch %",
        "Throughput %",
    ]);
    for machine in [MachineSpec::core2_quad_amp(), MachineSpec::three_core_amp()] {
        let mut config = experiment_config(MarkingConfig::paper_best());
        config.machine = machine.clone();
        let outcome = run_comparison(&config);
        table.add_row(vec![
            machine.name.clone(),
            format!("{:.2}", outcome.fairness.avg_time_decrease_pct),
            format!("{:.2}", outcome.fairness.max_flow_decrease_pct),
            format!("{:.2}", outcome.fairness.max_stretch_decrease_pct),
            format!("{:.2}", outcome.throughput.improvement_pct),
        ]);
    }
    println!("{}", table.render());
    println!("paper: performance on the 3-core setup is similar to the 4-core one (~32% speedup).");
}
