//! Section VII: the 3-core AMP configuration (2 fast, 1 slow) mentioned as
//! already-tested future work; the paper reports results similar to the
//! 4-core machine (~32% speedup).

use phase_amp::MachineSpec;
use phase_bench::{experiment_config, init};
use phase_core::{comparison_plan, comparison_result, prepare_workload, ExperimentPlan, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "3-core AMP (Section VII)",
        "The best technique (Loop[45]) on the 2-fast/1-slow machine, compared with the\n\
         4-core evaluation machine; both machines' baseline and tuned cells form one\n\
         plan fanned across the driver.",
    );

    let machines = [MachineSpec::core2_quad_amp(), MachineSpec::three_core_amp()];
    let mut plan = ExperimentPlan::new();
    let mut per_machine = Vec::new();
    for machine in &machines {
        let mut config = experiment_config(MarkingConfig::paper_best());
        config.machine = machine.clone();
        let prepared = prepare_workload(&config);
        plan.extend(comparison_plan(machine.name.clone(), &config, &prepared));
        per_machine.push((config, prepared));
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "Machine",
        "Avg time reduction %",
        "Max-flow %",
        "Max-stretch %",
        "Throughput %",
    ]);
    for (machine, (config, prepared)) in machines.iter().zip(&per_machine) {
        let result = comparison_result(&machine.name, &outcome, config, prepared)
            .expect("plan holds both cells of the machine");
        table.add_row(vec![
            machine.name.clone(),
            format!("{:.2}", result.fairness.avg_time_decrease_pct),
            format!("{:.2}", result.fairness.max_flow_decrease_pct),
            format!("{:.2}", result.fairness.max_stretch_decrease_pct),
            format!("{:.2}", result.throughput.improvement_pct),
        ]);
    }
    println!("{}", table.render());
    println!("paper: performance on the 3-core setup is similar to the 4-core one (~32% speedup).");
}
