//! Section VII: the 3-core AMP configuration (2 fast, 1 slow) mentioned as
//! already-tested future work; the paper reports results similar to the
//! 4-core machine (~32% speedup). Thin spec over the shared study runner
//! (`phase_bench::studies::exp_three_core`).

fn main() {
    phase_bench::run_study_main(
        "3-core AMP (Section VII)",
        "The best technique (Loop[45]) on the 2-fast/1-slow machine, compared with the\n\
         4-core evaluation machine; both machines' baseline and tuned cells form one\n\
         plan fanned across the driver.",
        phase_bench::studies::exp_three_core,
    );
}
