//! Figure 3: space overhead of phase marks per technique variant, as a box
//! plot (quartile summary) over the benchmark catalogue.

use phase_amp::MachineSpec;
use phase_bench::{init, overhead_variants};
use phase_core::{prepare_program, PipelineConfig, TextTable};
use phase_metrics::SummaryStats;
use phase_workload::Catalog;

fn main() {
    init(
        "Figure 3 — space overhead",
        "Phase-mark bytes added relative to the original binary size, per technique,\n\
         summarised over the 15 catalogue benchmarks (box-plot quartiles).",
    );

    let machine = MachineSpec::core2_quad_amp();
    let scale = if phase_bench::quick_mode() { 0.2 } else { 1.0 };
    let catalog = Catalog::standard(scale, 7);

    let mut table = TextTable::new(vec![
        "Technique",
        "Min %",
        "Q1 %",
        "Median %",
        "Q3 %",
        "Max %",
        "Mean marks",
    ]);
    for marking in overhead_variants() {
        let pipeline = PipelineConfig::with_marking(marking);
        let mut overheads = Vec::new();
        let mut marks = Vec::new();
        for bench in catalog.benchmarks() {
            let instrumented = prepare_program(bench.program(), &machine, &pipeline);
            overheads.push(instrumented.stats().space_overhead * 100.0);
            marks.push(instrumented.mark_count() as f64);
        }
        let stats = SummaryStats::of(&overheads);
        let mark_stats = SummaryStats::of(&marks);
        table.add_row(vec![
            marking.to_string(),
            format!("{:.2}", stats.min),
            format!("{:.2}", stats.q1),
            format!("{:.2}", stats.median),
            format!("{:.2}", stats.q3),
            format!("{:.2}", stats.max),
            format!("{:.1}", mark_stats.mean),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: less than 4% space overhead for the best technique (Loop[45]),\n\
         overhead decreasing as the minimum section size and lookahead grow."
    );
}
