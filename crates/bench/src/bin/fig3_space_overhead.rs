//! Figure 3: space overhead of phase marks per technique variant, as a box
//! plot (quartile summary) over the benchmark catalogue. Thin spec over the
//! shared study runner (`phase_bench::studies::fig3`).

fn main() {
    phase_bench::run_study_main(
        "Figure 3 — space overhead",
        "Phase-mark bytes added relative to the original binary size, per technique,\n\
         summarised over the 15 catalogue benchmarks (box-plot quartiles).",
        phase_bench::studies::fig3,
    );
}
