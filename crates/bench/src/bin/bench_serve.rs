//! Tuning-service benchmark (`BENCH_serve.json`): cold-versus-warm request
//! latency through one long-running [`TuningService`], plus a
//! budget-constrained run demonstrating that a bounded store evicts instead
//! of growing and never exceeds its byte budget.
//!
//! The first section issues a mix of isolation / marks / comparison requests
//! against an unbounded service, then repeats each request and records the
//! best warm latency: identical requests are answered from the
//! content-addressed store, so the warm path skips simulation entirely (the
//! "serve many tuning requests fast" headline). The second section replays a
//! wider request rotation against a service whose store is bounded to a few
//! megabytes and records the eviction counters and the maximum resident
//! footprint ever observed.

use std::time::Instant;

use phase_core::JsonValue;
use phase_metrics::LogHistogram;
use phase_serve::{ServiceConfig, TuningService};

/// Renders a histogram's full CDF curve as `[[bucket_upper_ns, fraction],
/// ...]` — the same shape `MetricValue::Cdf` renders in study rows.
fn cdf_json(histogram: &LogHistogram) -> JsonValue {
    JsonValue::Array(
        histogram
            .cdf()
            .into_iter()
            .map(|(upper_ns, fraction)| {
                JsonValue::Array(vec![JsonValue::from(upper_ns), JsonValue::from(fraction)])
            })
            .collect(),
    )
}

struct RequestCase {
    label: &'static str,
    line: String,
}

fn request_cases(scale: f64, slots: usize) -> Vec<RequestCase> {
    vec![
        RequestCase {
            label: "marks/loop45",
            line: format!(
                "{{\"id\": \"m1\", \"kind\": \"marks\", \
                 \"catalog\": {{\"scale\": {scale}, \"seed\": 7}}}}"
            ),
        },
        RequestCase {
            label: "isolation/loop45",
            line: format!(
                "{{\"id\": \"i1\", \"kind\": \"isolation\", \
                 \"catalog\": {{\"scale\": {scale}, \"seed\": 7}}, \"ipc_threshold\": 0.2}}"
            ),
        },
        RequestCase {
            label: "isolation/interval45",
            line: format!(
                "{{\"id\": \"i2\", \"kind\": \"isolation\", \
                 \"catalog\": {{\"scale\": {scale}, \"seed\": 7}}, \
                 \"marking\": {{\"granularity\": \"interval\", \"min_section_size\": 45}}}}"
            ),
        },
        RequestCase {
            label: "comparison/loop45",
            line: format!(
                "{{\"id\": \"c1\", \"kind\": \"comparison\", \
                 \"catalog\": {{\"scale\": {scale}}}, \"slots\": {slots}, \
                 \"jobs_per_slot\": 2, \"horizon_ns\": 4000000.0, \"workload_seed\": 11}}"
            ),
        },
    ]
}

const WARM_REPEATS: usize = 5;

fn main() {
    let settings = phase_bench::init(
        "Tuning-service benchmark (BENCH_serve.json)",
        "Cold-vs-warm request latency through the phase-serve service, plus a\n\
         budget-constrained run recording eviction behaviour of the bounded store.",
    );
    let scale = if settings.quick { 0.05 } else { 0.25 };
    let slots = settings.slots_or(if settings.quick { 4 } else { 12 });
    let threads = settings.threads.max(1);

    // --- Cold vs. warm through one unbounded service. ---
    let service =
        TuningService::new(ServiceConfig::with_threads(threads)).expect("cold start cannot fail");
    let mut rows = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    for case in request_cases(scale, slots) {
        let start = Instant::now();
        let cold = service.respond(&case.line);
        let cold_s = start.elapsed().as_secs_f64();
        assert!(!cold.is_error(), "{}: {:?}", case.label, cold.to_json());
        let cold_bytes = cold.to_json().render_compact();

        let mut warm_s = f64::INFINITY;
        let mut warm_histogram = LogHistogram::new();
        for _ in 0..WARM_REPEATS {
            let start = Instant::now();
            let warm = service.respond(&case.line);
            let elapsed = start.elapsed();
            warm_s = warm_s.min(elapsed.as_secs_f64());
            warm_histogram.record(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
            assert_eq!(
                warm.to_json().render_compact(),
                cold_bytes,
                "{}: a warm response changed",
                case.label
            );
        }
        let speedup = cold_s / warm_s.max(1e-9);
        worst_speedup = worst_speedup.min(speedup);
        println!(
            "{:24} cold {:>9.4}ms -> warm {:>9.4}ms  ({speedup:.1}x)",
            case.label,
            cold_s * 1e3,
            warm_s * 1e3
        );
        rows.push(
            JsonValue::object()
                .field("label", case.label)
                .field("cold_s", cold_s)
                .field("warm_s", warm_s)
                .field("speedup", speedup)
                // The full warm-latency distribution, not just the best
                // repeat: [[bucket_upper_ns, cumulative_fraction], ...].
                .field("cdf", cdf_json(&warm_histogram)),
        );
    }
    println!("worst warm speedup: {worst_speedup:.1}x");

    // --- Budget-constrained run: distinct requests under a small budget. ---
    let budget: u64 = if settings.quick {
        4 * 1024 * 1024
    } else {
        16 * 1024 * 1024
    };
    let bounded = TuningService::new(ServiceConfig {
        threads,
        budget_bytes: Some(budget),
        ..ServiceConfig::default()
    })
    .expect("cold start cannot fail");
    let mut max_resident = 0u64;
    let mut budget_requests = 0u64;
    for seed in 0..6u64 {
        for marking in ["loop", "interval"] {
            let line = format!(
                "{{\"id\": \"b-{seed}-{marking}\", \"kind\": \"marks\", \
                 \"catalog\": {{\"scale\": {scale}, \"seed\": {seed}}}, \
                 \"marking\": {{\"granularity\": \"{marking}\", \"min_section_size\": 45}}}}"
            );
            let response = bounded.respond(&line);
            assert!(!response.is_error(), "budget run request failed");
            budget_requests += 1;
            max_resident = max_resident.max(bounded.store().resident_bytes());
            assert!(
                max_resident <= budget,
                "budget exceeded: {max_resident} > {budget}"
            );
        }
    }
    let stats = bounded.stats();
    println!(
        "budget run: {budget_requests} requests, max resident {max_resident} / {budget} bytes, \
         {} evictions",
        stats.evictions()
    );

    // --- BENCH_serve.json. ---
    let mut doc = JsonValue::object();
    for (name, value) in settings.meta_json() {
        doc = doc.field(name, value);
    }
    let doc = doc
        .field("scale", scale)
        .field("warm_repeats", WARM_REPEATS)
        .field("worst_warm_speedup", worst_speedup)
        .field("requests", rows)
        .field(
            "budget_run",
            JsonValue::object()
                .field("budget_bytes", budget)
                .field("requests", budget_requests)
                .field("max_resident_bytes", max_resident)
                .field("within_budget", max_resident <= budget)
                .field("evictions", stats.evictions())
                .field("final_resident_bytes", stats.resident_bytes())
                .field("store", stats.store.to_json()),
        )
        // The full final snapshot (serving counters included — coalesced,
        // shed, per-kind admission/latency) so a regression in any serving
        // counter is visible in the committed artifact.
        .field("service_stats", stats.to_json());
    let path = settings.out_path("BENCH_serve.json");
    let written = phase_bench::write_report_file(&path, &doc.render()).map(|()| path);
    phase_bench::announce_report(written, "BENCH_serve.json");
}
