//! Figure 4: time overhead of the phase marks themselves, measured the way
//! the paper does — the marks execute and perform the affinity system call,
//! but "switch to all cores", so placement is never constrained and the only
//! difference from the baseline is the marks' execution cost.

use phase_bench::{experiment_config, init};
use phase_core::{
    baseline_catalog, build_slots, instrument_catalog, CellSpec, ExperimentPlan, PipelineConfig,
    Policy, TextTable,
};
use phase_marking::MarkingConfig;
use phase_metrics::percent_change;
use phase_sched::SimResult;
use phase_workload::{Catalog, Workload};

fn main() {
    init(
        "Figure 4 — time overhead of phase marks (workload size 84)",
        "Identical workloads run with uninstrumented binaries and with instrumented binaries\n\
         whose marks switch to \"all cores\"; the completion-time difference is the mark\n\
         overhead. The baseline and the eight variants are one plan fanned across the driver.",
    );

    let machine = phase_amp::MachineSpec::core2_quad_amp();
    let quick = phase_bench::quick_mode();
    let slots = phase_bench::env_or("PHASE_BENCH_SLOTS", 84usize);
    let scale = if quick { 0.1 } else { 0.5 };
    let catalog = Catalog::standard(scale, 7);
    let workload = Workload::random(&catalog, slots, 1, 84);
    let sim = experiment_config(MarkingConfig::paper_best()).sim;

    let variants = [
        MarkingConfig::basic_block(15, 0),
        MarkingConfig::basic_block(15, 2),
        MarkingConfig::basic_block(45, 0),
        MarkingConfig::interval(30),
        MarkingConfig::interval(45),
        MarkingConfig::loop_level(30),
        MarkingConfig::loop_level(45),
        MarkingConfig::loop_level(60),
    ];

    // One plan: the uninstrumented baseline plus one all-cores cell per
    // marking variant, all over the same job queues.
    let mut plan = ExperimentPlan::new();
    let plain = baseline_catalog(&catalog);
    plan.push(CellSpec {
        group: "baseline".into(),
        label: "uninstrumented".into(),
        machine: machine.clone(),
        slots: build_slots(&workload, &catalog, &plain),
        policy: Policy::Stock,
        sim,
    });
    for marking in variants {
        let pipeline = PipelineConfig::with_marking(marking);
        let instrumented = instrument_catalog(&catalog, &machine, &pipeline);
        plan.push(CellSpec {
            group: marking.to_string(),
            label: format!("all-cores-{marking}"),
            machine: machine.clone(),
            slots: build_slots(&workload, &catalog, &instrumented),
            policy: Policy::AllCores,
            sim,
        });
    }
    let outcome = phase_bench::driver().run(plan);
    let baseline = &outcome.cells[0].result;

    let mut table = TextTable::new(vec![
        "Technique",
        "Marks executed",
        "Baseline instrs",
        "Instrumented instrs",
        "Time overhead %",
    ]);
    for cell in &outcome.cells[1..] {
        let run: &SimResult = &cell.result;
        // Time overhead: extra busy time needed for the same committed work,
        // approximated by the change in instructions-per-busy-nanosecond.
        let baseline_busy: f64 = baseline.core_busy_ns.iter().sum();
        let run_busy: f64 = run.core_busy_ns.iter().sum();
        let baseline_rate = baseline.total_instructions as f64 / baseline_busy;
        let run_rate = (run.total_instructions - run.total_marks_executed * 12) as f64 / run_busy;
        let overhead_pct = percent_change(run_rate, baseline_rate);
        table.add_row(vec![
            cell.group.clone(),
            run.total_marks_executed.to_string(),
            baseline.total_instructions.to_string(),
            run.total_instructions.to_string(),
            format!("{overhead_pct:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: as little as 0.14% time overhead, lowest for the loop technique because it\n\
         eliminates marks inside nested loops and in functions called from loops."
    );
}
