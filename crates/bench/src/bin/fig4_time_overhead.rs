//! Figure 4: time overhead of the phase marks themselves, measured the way
//! the paper does — the marks execute and perform the affinity system call,
//! but "switch to all cores", so placement is never constrained and the only
//! difference from the baseline is the marks' execution cost. Thin spec over
//! the shared study runner (`phase_bench::studies::fig4`).

fn main() {
    phase_bench::run_study_main(
        "Figure 4 — time overhead of phase marks (workload size 84)",
        "Identical workloads run with uninstrumented binaries and with instrumented binaries\n\
         whose marks switch to \"all cores\"; the completion-time difference is the mark\n\
         overhead. The baseline and the eight variants are one plan fanned across the driver.",
        phase_bench::studies::fig4,
    );
}
