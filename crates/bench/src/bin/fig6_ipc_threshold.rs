//! Figure 6: workload throughput improvement as a function of the IPC
//! threshold `δ` used by Algorithm 2 (basic-block strategy, minimum block
//! size 15, no lookahead). Thin spec over the shared study runner
//! (`phase_bench::studies::fig6`).

fn main() {
    phase_bench::run_study_main(
        "Figure 6 — throughput vs. IPC threshold",
        "Basic-block strategy, min block size 15, lookahead 0; the workload is re-run with\n\
         the same queues for every threshold value. All threshold cells form one plan\n\
         fanned across the driver.",
        phase_bench::studies::fig6,
    );
}
