//! Figure 6: workload throughput improvement as a function of the IPC
//! threshold `δ` used by Algorithm 2 (basic-block strategy, minimum block
//! size 15, no lookahead).

use phase_bench::{experiment_config, init};
use phase_core::{comparison_plan, comparison_result, prepare_workload, ExperimentPlan, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Figure 6 — throughput vs. IPC threshold",
        "Basic-block strategy, min block size 15, lookahead 0; the workload is re-run with\n\
         the same queues for every threshold value. All threshold cells form one plan\n\
         fanned across the driver.",
    );

    let thresholds = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5];
    let base = experiment_config(MarkingConfig::basic_block(15, 0));
    let prepared = prepare_workload(&base);

    let mut plan = ExperimentPlan::new();
    let mut configs = Vec::new();
    for threshold in thresholds {
        let mut config = base.clone();
        config.tuner.ipc_threshold = threshold;
        plan.extend(comparison_plan(
            format!("delta={threshold:.2}"),
            &config,
            &prepared,
        ));
        configs.push(config);
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "IPC threshold",
        "Throughput improvement %",
        "Avg time reduction %",
        "Core switches",
    ]);
    for (threshold, config) in thresholds.iter().zip(&configs) {
        let group = format!("delta={threshold:.2}");
        let comparison = comparison_result(&group, &outcome, config, &prepared)
            .expect("plan holds both cells of the group");
        table.add_row(vec![
            format!("{threshold:.2}"),
            format!("{:.2}", comparison.throughput.improvement_pct),
            format!("{:.2}", comparison.fairness.avg_time_decrease_pct),
            comparison.tuned.total_core_switches.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: extreme thresholds degrade throughput (everything migrates away from\n\
         one core type at δ≈0; nothing well-suited reaches the efficient cores at large δ);\n\
         an interior value balances the assignment."
    );
}
