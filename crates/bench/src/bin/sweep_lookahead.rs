//! Section IV-C2: effect of the basic-block technique's lookahead depth on
//! throughput and fairness. Thin spec over the shared study runner
//! (`phase_bench::studies::sweep_lookahead`).

fn main() {
    phase_bench::run_study_main(
        "Lookahead-depth sweep (Section IV-C2)",
        "Basic-block strategy with min size 15 and lookahead depths 0–3; one comparison\n\
         plan per depth, fanned across the driver together.",
        phase_bench::studies::sweep_lookahead,
    );
}
