//! Section IV-C2: effect of the basic-block technique's lookahead depth on
//! throughput and fairness.

use phase_bench::{experiment_config, init};
use phase_core::{run_comparison, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Lookahead-depth sweep (Section IV-C2)",
        "Basic-block strategy with min size 15 and lookahead depths 0–3.",
    );

    let mut table = TextTable::new(vec![
        "Technique",
        "Static marks (catalogue)",
        "Throughput improvement %",
        "Avg time reduction %",
        "Max-stretch change %",
    ]);
    for depth in 0..=3 {
        let config = experiment_config(MarkingConfig::basic_block(15, depth));
        let outcome = run_comparison(&config);
        let static_marks: usize = phase_core::instrument_catalog(
            &phase_workload::Catalog::standard(config.catalog_scale, config.workload_seed),
            &config.machine,
            &config.pipeline,
        )
        .iter()
        .map(|p| p.mark_count())
        .sum();
        table.add_row(vec![
            config.pipeline.marking.to_string(),
            static_marks.to_string(),
            format!("{:.2}", outcome.throughput.improvement_pct),
            format!("{:.2}", outcome.fairness.avg_time_decrease_pct),
            format!("{:.2}", outcome.fairness.max_stretch_decrease_pct),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: less lookahead gives higher throughput but at a significant cost in\n\
         fairness; deeper lookahead removes marks and tempers both effects."
    );
}
