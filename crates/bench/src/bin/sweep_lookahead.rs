//! Section IV-C2: effect of the basic-block technique's lookahead depth on
//! throughput and fairness.

use phase_bench::{experiment_config, init};
use phase_core::{comparison_plan, comparison_result, prepare_workload, ExperimentPlan, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Lookahead-depth sweep (Section IV-C2)",
        "Basic-block strategy with min size 15 and lookahead depths 0–3; one comparison\n\
         plan per depth, fanned across the driver together.",
    );

    let depths = [0usize, 1, 2, 3];
    let mut plan = ExperimentPlan::new();
    let mut per_depth = Vec::new();
    for depth in depths {
        let config = experiment_config(MarkingConfig::basic_block(15, depth));
        let prepared = prepare_workload(&config);
        plan.extend(comparison_plan(
            format!("lookahead={depth}"),
            &config,
            &prepared,
        ));
        per_depth.push((config, prepared));
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "Technique",
        "Static marks (catalogue)",
        "Throughput improvement %",
        "Avg time reduction %",
        "Max-stretch change %",
    ]);
    for (depth, (config, prepared)) in depths.iter().zip(&per_depth) {
        let result = comparison_result(&format!("lookahead={depth}"), &outcome, config, prepared)
            .expect("plan holds both cells of the depth");
        let static_marks: usize = prepared.instrumented.iter().map(|p| p.mark_count()).sum();
        table.add_row(vec![
            config.pipeline.marking.to_string(),
            static_marks.to_string(),
            format!("{:.2}", result.throughput.improvement_pct),
            format!("{:.2}", result.fairness.avg_time_decrease_pct),
            format!("{:.2}", result.fairness.max_stretch_decrease_pct),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: less lookahead gives higher throughput but at a significant cost in\n\
         fairness; deeper lookahead removes marks and tempers both effects."
    );
}
