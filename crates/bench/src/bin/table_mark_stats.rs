//! Section III / IV-B: phase-mark statistics for the best technique —
//! marks per benchmark, bytes per mark, and the core-switch cost.

use phase_amp::{CoreId, CostModel, MachineSpec};
use phase_bench::init;
use phase_core::{prepare_program, PipelineConfig, TextTable};
use phase_marking::{MarkingConfig, MARK_SIZE_BYTES};
use phase_metrics::SummaryStats;
use phase_workload::Catalog;

fn main() {
    init(
        "Phase-mark statistics (Sections III and IV-B)",
        "Marks inserted per benchmark with Loop[45], their size, and the cost of a core switch.",
    );

    let machine = MachineSpec::core2_quad_amp();
    let scale = if phase_bench::quick_mode() { 0.2 } else { 1.0 };
    let catalog = Catalog::standard(scale, 7);
    let pipeline = PipelineConfig::with_marking(MarkingConfig::paper_best());

    let mut table = TextTable::new(vec![
        "Benchmark",
        "Phase marks",
        "Added bytes",
        "Overhead %",
    ]);
    let mut mark_counts = Vec::new();
    for bench in catalog.benchmarks() {
        let instrumented = prepare_program(bench.program(), &machine, &pipeline);
        mark_counts.push(instrumented.mark_count() as f64);
        table.add_row(vec![
            bench.name().to_string(),
            instrumented.mark_count().to_string(),
            instrumented.stats().added_bytes.to_string(),
            format!("{:.2}", instrumented.stats().space_overhead * 100.0),
        ]);
    }
    println!("{}", table.render());

    let summary = SummaryStats::of(&mark_counts);
    println!(
        "marks per benchmark: mean {:.2} (paper: 20.24 for Loop[45])",
        summary.mean
    );
    println!("bytes per mark: {MARK_SIZE_BYTES} (paper: at most 78 bytes)");

    let cost = CostModel::new(machine);
    let (cycles, nanos_fast) = cost.core_switch_cost(CoreId(0));
    let (_, nanos_slow) = cost.core_switch_cost(CoreId(2));
    println!(
        "core switch cost: {cycles} cycles ({nanos_fast:.0} ns on a fast core, {nanos_slow:.0} ns on a slow core; paper: ~1000 cycles)"
    );
}
