//! Section III / IV-B: phase-mark statistics for the best technique —
//! marks per benchmark, bytes per mark, and the core-switch cost. Thin spec
//! over the shared study runner (`phase_bench::studies::table_mark_stats`).

fn main() {
    phase_bench::run_study_main(
        "Phase-mark statistics (Sections III and IV-B)",
        "Marks inserted per benchmark with Loop[45], their size, and the cost of a core switch.",
        phase_bench::studies::table_mark_stats,
    );
}
