//! Open-loop load benchmark for the TCP tuning service
//! (`BENCH_load.json`): deterministic arrival traces (Poisson, bursty,
//! diurnal) replayed against a live `serve_tcp_with` listener on localhost,
//! recording per-request latency percentiles (p50/p99/p999 from the
//! fixed-bucket log-scale histogram) and sustained RPS per
//! (trace × executor-workers × queue-depth) row.
//!
//! The replay is *open-loop*: request send times come from the trace alone,
//! never from response arrival, so a slow server accumulates queueing delay
//! in the measured latency instead of silently throttling the offered load.
//! Each trace mixes repeated (cache-hot), distinct, and malformed request
//! lines. A second section storms one cold request from many concurrent
//! clients against a deliberately cache-less service (1-byte store budget)
//! with single-flight coalescing on and off, proving the coalesced path
//! multiplies throughput without changing a byte of any response.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use phase_core::{JsonValue, MetricValue, StudyReport, StudyRow};
use phase_metrics::LogHistogram;
use phase_serve::{serve_tcp_with, ServiceConfig, TuningService, WireConfig};
use phase_workload::TraceShape;

// --- The request mix -----------------------------------------------------

const DISTINCT_SPECS: usize = 8;
const MALFORMED: &str = "{\"id\": \"bad\", \"kind\": \"dance\"}";

fn distinct_line(slot: usize, scale: f64) -> String {
    format!(
        "{{\"id\": \"d{slot}\", \"kind\": \"marks\", \
         \"catalog\": {{\"scale\": {scale}, \"seed\": {slot}}}}}"
    )
}

fn hot_line(scale: f64) -> String {
    format!(
        "{{\"id\": \"hot\", \"kind\": \"marks\", \
         \"catalog\": {{\"scale\": {scale}, \"seed\": 100}}}}"
    )
}

/// The mix: 10% malformed (structured-error path), 10% one hot repeated
/// spec, 80% cycling through a small distinct set — all pre-warmed, so the
/// matrix measures serving overhead, not simulation time.
fn line_for(index: usize, scale: f64) -> String {
    match index % 10 {
        9 => MALFORMED.to_string(),
        4 => hot_line(scale),
        _ => distinct_line(index % DISTINCT_SPECS, scale),
    }
}

// --- Open-loop replay ----------------------------------------------------

struct ReplayOutcome {
    histogram: LogHistogram,
    responses: u64,
    errors: u64,
    /// Offset of the last completion from the replay epoch, seconds.
    last_completion_s: f64,
}

/// Replays timestamped request lines over `connections` pipelined TCP
/// connections (round-robin assignment; per-connection send order preserved,
/// which matches the server's per-connection response order).
fn replay(
    addr: std::net::SocketAddr,
    events: &[(f64, String)],
    connections: usize,
) -> ReplayOutcome {
    let mut per_connection: Vec<Vec<(f64, String)>> = vec![Vec::new(); connections];
    for (index, event) in events.iter().enumerate() {
        per_connection[index % connections].push(event.clone());
    }
    // The epoch is a short grace period ahead so every sender thread is
    // parked on its first deadline before the clock starts.
    let epoch = Instant::now() + Duration::from_millis(100);
    let readers: Vec<_> = per_connection
        .into_iter()
        .map(|batch| {
            let stream = TcpStream::connect(addr).expect("connect to the service");
            stream.set_nodelay(true).expect("set nodelay");
            let read_half = stream.try_clone().expect("split the stream");
            let schedule: Vec<f64> = batch.iter().map(|(at, _)| *at).collect();
            let writer = std::thread::spawn(move || {
                let mut stream = stream;
                for (at, line) in &batch {
                    let target = epoch + Duration::from_secs_f64(*at);
                    let wait = target.saturating_duration_since(Instant::now());
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    stream
                        .write_all(format!("{line}\n").as_bytes())
                        .expect("send the request");
                }
                let _ = stream.shutdown(std::net::Shutdown::Write);
            });
            let reader = std::thread::spawn(move || {
                let mut reader = BufReader::new(read_half);
                let mut samples = Vec::with_capacity(schedule.len());
                let mut line = String::new();
                for at in schedule {
                    line.clear();
                    let n = reader.read_line(&mut line).expect("read the response");
                    assert!(n > 0, "the server closed the connection early");
                    let done_s = epoch.elapsed().as_secs_f64();
                    // Latency is measured from the *scheduled* arrival: a
                    // sender running behind still charges the backlog here.
                    let latency_s = (done_s - at).max(0.0);
                    let is_error = line.contains("\"status\": \"error\"");
                    samples.push((latency_s, done_s, is_error));
                }
                samples
            });
            (writer, reader)
        })
        .collect();

    let mut outcome = ReplayOutcome {
        histogram: LogHistogram::new(),
        responses: 0,
        errors: 0,
        last_completion_s: 0.0,
    };
    for (writer, reader) in readers {
        writer.join().expect("sender thread");
        for (latency_s, done_s, is_error) in reader.join().expect("reader thread") {
            outcome.histogram.record((latency_s * 1e9) as u64);
            outcome.responses += 1;
            outcome.errors += u64::from(is_error);
            outcome.last_completion_s = outcome.last_completion_s.max(done_s);
        }
    }
    outcome
}

// --- The matrix ----------------------------------------------------------

struct MatrixParams {
    rate_hz: f64,
    duration_s: f64,
    scale: f64,
    connections: usize,
    workers: Vec<usize>,
    depths: Vec<usize>,
}

#[allow(clippy::too_many_arguments)]
fn run_row(
    trace: TraceShape,
    workers: usize,
    depth: usize,
    params: &MatrixParams,
    seed: u64,
    quick: bool,
) -> (StudyRow, phase_core::StoreStats) {
    let service = Arc::new(
        TuningService::new(ServiceConfig::with_threads(1)).expect("cold start cannot fail"),
    );
    // Pre-warm every spec in the mix: matrix rows measure the serving path
    // (parse, coalesce, queue, cache lookup), not cold simulation.
    for slot in 0..DISTINCT_SPECS {
        assert!(!service
            .respond(&distinct_line(slot, params.scale))
            .is_error());
    }
    assert!(!service.respond(&hot_line(params.scale)).is_error());

    let events: Vec<(f64, String)> = trace
        .arrivals(params.rate_hz, params.duration_s, seed)
        .into_iter()
        .enumerate()
        .map(|(index, at)| (at, line_for(index, params.scale)))
        .collect();
    assert!(!events.is_empty(), "the trace generated no arrivals");
    let expected_errors = events.iter().filter(|(_, line)| line == MALFORMED).count() as u64;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let config = WireConfig {
        connection_workers: params.connections + 1,
        executor_workers: workers,
        queue_depth: depth,
        ..WireConfig::default()
    };
    let server = {
        let service = Arc::clone(&service);
        let connections = params.connections;
        std::thread::spawn(move || serve_tcp_with(&service, listener, Some(connections), config))
    };
    let outcome = replay(addr, &events, params.connections);
    let summary = server
        .join()
        .expect("server thread")
        .expect("serving succeeded");

    assert_eq!(
        outcome.responses,
        events.len() as u64,
        "every request answered"
    );
    assert_eq!(summary.responses, events.len() as u64);
    let stats = service.stats();
    if quick {
        // The smoke profile must complete shed-free: a warm service at this
        // offered load has no excuse to drop anything.
        assert_eq!(stats.serving.shed, 0, "quick run shed requests");
        assert_eq!(
            outcome.errors, expected_errors,
            "only malformed lines errored"
        );
    }

    let (p50_ns, p99_ns, p999_ns) = outcome.histogram.p50_p99_p999();
    let rps = outcome.responses as f64 / outcome.last_completion_s.max(1e-9);
    let label = format!("{}/w{workers}/q{depth}", trace.name());
    println!(
        "{label:>18}  {:>5} req  {rps:>8.1} rps  p50 {:>9.3}ms  p99 {:>9.3}ms  \
         p999 {:>9.3}ms  shed {}",
        outcome.responses,
        p50_ns as f64 / 1e6,
        p99_ns as f64 / 1e6,
        p999_ns as f64 / 1e6,
        stats.serving.shed,
    );
    let row = StudyRow::new(label)
        .metric("trace", MetricValue::Text(trace.name().to_string()))
        .metric("executor_workers", MetricValue::UInt(workers as u64))
        .metric("queue_depth", MetricValue::UInt(depth as u64))
        .metric("requests", MetricValue::UInt(outcome.responses))
        .metric("rps", MetricValue::Float(rps))
        .metric("p50_ns", MetricValue::UInt(p50_ns))
        .metric("p99_ns", MetricValue::UInt(p99_ns))
        .metric("p999_ns", MetricValue::UInt(p999_ns))
        .metric("max_ns", MetricValue::UInt(outcome.histogram.max()))
        .metric("cdf", MetricValue::Cdf(outcome.histogram.cdf()))
        .metric("errors", MetricValue::UInt(outcome.errors))
        .metric("shed", MetricValue::UInt(stats.serving.shed))
        .metric("coalesced", MetricValue::UInt(stats.serving.coalesced))
        .metric(
            "queue_hiwater",
            MetricValue::UInt(stats.serving.queue_hiwater),
        );
    (row, stats.store)
}

// --- The coalescing storm ------------------------------------------------

const STORM_CLIENTS: usize = 16;

fn storm_line(scale: f64) -> String {
    format!(
        "{{\"id\": \"storm\", \"kind\": \"isolation\", \
         \"catalog\": {{\"scale\": {scale}, \"seed\": 11}}}}"
    )
}

/// Storms one identical cold request from [`STORM_CLIENTS`] concurrent
/// connections against a cache-less service (1-byte budget: nothing is ever
/// admitted to the store, so the uncoalesced path recomputes every time).
/// Returns the wall-clock and every response's bytes.
fn run_storm(line: &str, coalesce: bool) -> (f64, Vec<String>) {
    let service = Arc::new(
        TuningService::new(ServiceConfig {
            threads: 1,
            budget_bytes: Some(1),
            coalesce,
            ..ServiceConfig::default()
        })
        .expect("cold start cannot fail"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let config = WireConfig {
        connection_workers: STORM_CLIENTS + 2,
        executor_workers: 2,
        queue_depth: STORM_CLIENTS * 4,
        ..WireConfig::default()
    };
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp_with(&service, listener, Some(STORM_CLIENTS), config))
    };
    let barrier = Arc::new(Barrier::new(STORM_CLIENTS + 1));
    let clients: Vec<_> = (0..STORM_CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let line = line.to_string();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect to the service");
                stream.set_nodelay(true).expect("set nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("split the stream"));
                barrier.wait();
                stream
                    .write_all(format!("{line}\n").as_bytes())
                    .expect("send the request");
                let mut response = String::new();
                reader.read_line(&mut response).expect("read the response");
                let _ = stream.shutdown(std::net::Shutdown::Write);
                response.trim_end().to_string()
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let responses: Vec<String> = clients
        .into_iter()
        .map(|client| client.join().expect("storm client"))
        .collect();
    let wall_s = start.elapsed().as_secs_f64();
    server
        .join()
        .expect("server thread")
        .expect("serving succeeded");
    (wall_s, responses)
}

// --- The traced-request smoke --------------------------------------------

/// Replays one request through a live listener with tracing on, fetches its
/// timeline via the `trace` wire request, and asserts the schema: found,
/// non-empty, every record carrying the full logical coordinate. Returns the
/// event count. Runs after the latency matrix so tracing never perturbs it.
fn run_trace_smoke(scale: f64) -> usize {
    phase_trace::set_enabled(true);
    let service = Arc::new(
        TuningService::new(ServiceConfig::with_threads(1)).expect("cold start cannot fail"),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            serve_tcp_with(&service, listener, Some(1), WireConfig::default())
        })
    };
    let mut stream = TcpStream::connect(addr).expect("connect to the service");
    stream.set_nodelay(true).expect("set nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("split the stream"));
    let mut roundtrip = |line: String| -> JsonValue {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send the request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read the response");
        phase_core::json::parse(response.trim_end()).expect("the response line parses")
    };
    let study = roundtrip(format!(
        "{{\"id\": \"traced\", \"kind\": \"marks\", \
         \"catalog\": {{\"scale\": {scale}, \"seed\": 5}}}}"
    ));
    assert_eq!(
        study.get("status").and_then(JsonValue::as_str),
        Some("ok"),
        "the traced request succeeded"
    );
    let timeline =
        roundtrip("{\"id\": \"tl\", \"kind\": \"trace\", \"target\": \"traced\"}".into());
    let _ = stream.shutdown(std::net::Shutdown::Write);
    server
        .join()
        .expect("server thread")
        .expect("serving succeeded");
    phase_trace::set_enabled(false);

    assert_eq!(
        timeline.get("found"),
        Some(&JsonValue::Bool(true)),
        "the timeline for the finished request is retrievable"
    );
    let events = timeline
        .get("events")
        .and_then(JsonValue::as_array)
        .expect("events array");
    assert!(!events.is_empty(), "the timeline carries records");
    for event in events {
        for field in [
            "trace", "lane", "scope", "seq", "kind", "domain", "name", "t_ns", "value",
        ] {
            assert!(
                event.get(field).is_some(),
                "trace record missing '{field}': {}",
                event.render_compact()
            );
        }
    }
    println!(
        "      trace smoke  timeline found with {} schema-valid records",
        events.len()
    );
    events.len()
}

/// Captures one traced request end to end on this thread (Bench lane) and
/// dumps the records as NDJSON to `path` — the `--trace-out` contract.
fn dump_trace(path: &std::path::Path, scale: f64) {
    phase_trace::set_enabled(true);
    let service =
        TuningService::new(ServiceConfig::with_threads(1)).expect("cold start cannot fail");
    let trace_id = phase_trace::new_trace_id();
    {
        let _ctx = phase_trace::install(trace_id, phase_trace::Lane::Bench, 0);
        let response = service.respond(&format!(
            "{{\"id\": \"dump\", \"kind\": \"marks\", \
             \"catalog\": {{\"scale\": {scale}, \"seed\": 6}}}}"
        ));
        assert!(!response.is_error(), "the dumped request succeeded");
    }
    phase_trace::set_enabled(false);
    let records = phase_trace::take(trace_id);
    match phase_bench::write_trace_ndjson(path, &records) {
        Ok(()) => println!("wrote {} ({} trace records)", path.display(), records.len()),
        Err(error) => {
            eprintln!("failed to write {}: {error}", path.display());
            std::process::exit(1);
        }
    }
}

// --- main ----------------------------------------------------------------

fn main() {
    let settings = phase_bench::init(
        "Open-loop serving load benchmark (BENCH_load.json)",
        "Replays deterministic Poisson/bursty/diurnal arrival traces against a live\n\
         serve_tcp listener and records p50/p99/p999 latency and sustained RPS per\n\
         (trace x workers x queue-depth) row, plus an identical-request storm\n\
         measuring the single-flight coalescing speedup.",
    );
    let quick = settings.quick;
    let started = Instant::now();
    let params = MatrixParams {
        rate_hz: if quick { 150.0 } else { 400.0 },
        duration_s: if quick { 1.0 } else { 2.5 },
        scale: 0.05,
        connections: 6,
        workers: vec![1, 2],
        depths: if quick { vec![64] } else { vec![16, 64] },
    };

    // --- The trace matrix. ---
    let mut rows = Vec::new();
    let mut store = None;
    for trace in TraceShape::all() {
        for &workers in &params.workers {
            for &depth in &params.depths {
                let seed = 0xC60_2011 ^ (workers as u64) << 8 ^ depth as u64;
                let (row, row_store) = run_row(trace, workers, depth, &params, seed, quick);
                rows.push(row);
                store = Some(row_store);
            }
        }
    }

    // --- The coalescing storm. ---
    // Slow enough cold (~hundreds of ms) that all storm clients join the
    // leader's flight well before it completes.
    let line = storm_line(if quick { 2.0 } else { 4.0 });
    let replay_bytes = TuningService::new(ServiceConfig::with_threads(1))
        .expect("cold start cannot fail")
        .respond(&line)
        .to_json()
        .render_compact();
    let mut storm_rps = [0.0f64; 2];
    for (index, coalesce) in [true, false].into_iter().enumerate() {
        let (wall_s, responses) = run_storm(&line, coalesce);
        for response in &responses {
            assert_eq!(
                response, &replay_bytes,
                "a storm response (coalesce={coalesce}) diverged from the serial replay"
            );
        }
        let rps = STORM_CLIENTS as f64 / wall_s.max(1e-9);
        storm_rps[index] = rps;
        let label = if coalesce {
            "storm/coalesced"
        } else {
            "storm/uncoalesced"
        };
        println!("{label:>18}  {STORM_CLIENTS:>5} req  {rps:>8.1} rps  wall {wall_s:.3}s");
        rows.push(
            StudyRow::new(label)
                .metric("coalesce", MetricValue::Text(coalesce.to_string()))
                .metric("requests", MetricValue::UInt(STORM_CLIENTS as u64))
                .metric("rps", MetricValue::Float(rps))
                .metric("wall_s", MetricValue::Float(wall_s)),
        );
    }
    let speedup = storm_rps[0] / storm_rps[1].max(1e-9);
    println!("coalescing speedup: {speedup:.1}x (byte-identical responses in both modes)");
    assert!(
        speedup >= 5.0,
        "coalescing must multiply identical-request throughput at least 5x, got {speedup:.1}x"
    );

    // --- The traced-request smoke (after the matrix: tracing never
    // perturbs the latency measurements above). ---
    let trace_events = run_trace_smoke(params.scale);
    if let Some(path) = &settings.trace_out {
        dump_trace(path, params.scale);
    }

    // --- BENCH_load.json. ---
    let report = StudyReport {
        study: "load".to_string(),
        title: "Open-loop serving latency: Poisson/bursty/diurnal traces over serve_tcp"
            .to_string(),
        rows,
        store: store.expect("the matrix ran at least one row"),
        elapsed_s: started.elapsed().as_secs_f64(),
    };
    let written = phase_bench::write_study_report_with(
        &report,
        &settings,
        &[
            ("rate_hz", JsonValue::from(params.rate_hz)),
            ("duration_s", JsonValue::from(params.duration_s)),
            ("connections", JsonValue::from(params.connections as u64)),
            ("storm_clients", JsonValue::from(STORM_CLIENTS as u64)),
            ("coalesce_speedup", JsonValue::from(speedup)),
            ("trace_smoke_events", JsonValue::from(trace_events as u64)),
        ],
    );
    phase_bench::announce_report(written, "BENCH_load.json");
}
