//! Figure 5: average cycles per core switch for each benchmark (log scale in
//! the paper); a switch is amortised when this number is far above the
//! ~1000-cycle switch cost.

use std::sync::Arc;

use phase_amp::MachineSpec;
use phase_bench::init;
use phase_core::{prepare_program, CellSpec, ExperimentPlan, PipelineConfig, Policy, TextTable};
use phase_marking::MarkingConfig;
use phase_runtime::TunerConfig;
use phase_sched::SimConfig;
use phase_workload::Catalog;

fn main() {
    init(
        "Figure 5 — average cycles per core switch",
        "Cycles executed by each benchmark divided by the number of core switches it made\n\
         (running alone with Loop[45] marking and the 0.2-threshold tuner); one isolation\n\
         cell per benchmark, fanned across the driver's workers.",
    );

    let machine = MachineSpec::core2_quad_amp();
    let scale = if phase_bench::quick_mode() { 0.2 } else { 1.0 };
    let catalog = Catalog::standard(scale, 7);
    let pipeline = PipelineConfig::with_marking(MarkingConfig::paper_best());

    let mut plan = ExperimentPlan::new();
    for bench in catalog.benchmarks() {
        let instrumented = Arc::new(prepare_program(bench.program(), &machine, &pipeline));
        plan.push(CellSpec::isolation(
            bench.name(),
            instrumented,
            machine.clone(),
            Policy::Tuned(TunerConfig::paper_table1()),
            SimConfig::default(),
        ));
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "Benchmark",
        "Cycles",
        "Switches",
        "Cycles per switch",
        "Amortises 1000-cycle switch?",
    ]);
    for cell in &outcome.cells {
        let record = cell
            .result
            .records
            .first()
            .expect("isolation cell ran one process");
        let switches = record.stats.core_switches;
        let cycles = record.stats.cycles;
        let per_switch = if switches == 0 {
            f64::INFINITY
        } else {
            cycles / switches as f64
        };
        table.add_row(vec![
            cell.group.clone(),
            format!("{cycles:.3e}"),
            switches.to_string(),
            if per_switch.is_finite() {
                format!("{per_switch:.3e}")
            } else {
                "no switches".to_string()
            },
            if per_switch > 10_000.0 {
                "yes".into()
            } else {
                "marginal".into()
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: most benchmarks execute millions to billions of cycles per switch,\n\
         comfortably amortising the ~1000-cycle switch cost."
    );
}
