//! Figure 5: average cycles per core switch for each benchmark (log scale in
//! the paper); a switch is amortised when this number is far above the
//! ~1000-cycle switch cost. Thin spec over the shared study runner
//! (`phase_bench::studies::fig5`).

fn main() {
    phase_bench::run_study_main(
        "Figure 5 — average cycles per core switch",
        "Cycles executed by each benchmark divided by the number of core switches it made\n\
         (running alone with Loop[45] marking and the 0.2-threshold tuner); one isolation\n\
         cell per benchmark, fanned across the driver's workers.",
        phase_bench::studies::fig5,
    );
}
