//! Table 1: core switches and isolated runtime per benchmark under the best
//! technique (Loop[45], 0.2 IPC threshold).

use std::sync::Arc;

use phase_amp::MachineSpec;
use phase_bench::init;
use phase_core::{
    format_duration_ns, prepare_program, CellSpec, ExperimentPlan, PipelineConfig, Policy,
    TextTable,
};
use phase_marking::MarkingConfig;
use phase_runtime::TunerConfig;
use phase_sched::SimConfig;
use phase_workload::Catalog;

fn main() {
    init(
        "Table 1 — switches per benchmark (Loop[45], 0.2 threshold)",
        "Each benchmark runs alone on the AMP with the phase tuner; the table reports\n\
         the core switches it performed and its runtime. The 15 isolation runs are\n\
         independent cells fanned across the driver's worker threads.",
    );

    let machine = MachineSpec::core2_quad_amp();
    let scale = if phase_bench::quick_mode() { 0.2 } else { 1.0 };
    let catalog = Catalog::standard(scale, 7);
    let pipeline = PipelineConfig::with_marking(MarkingConfig::paper_best());
    let tuner_config = TunerConfig::paper_table1();

    let mut plan = ExperimentPlan::new();
    for bench in catalog.benchmarks() {
        let instrumented = Arc::new(prepare_program(bench.program(), &machine, &pipeline));
        plan.push(CellSpec::isolation(
            bench.name(),
            instrumented,
            machine.clone(),
            Policy::Tuned(tuner_config),
            SimConfig::default(),
        ));
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "Benchmark",
        "Switches",
        "Runtime",
        "Marks executed",
        "Instructions",
    ]);
    for cell in &outcome.cells {
        let record = cell
            .result
            .records
            .first()
            .expect("isolation cell ran one process");
        table.add_row(vec![
            cell.group.clone(),
            record.stats.core_switches.to_string(),
            format_duration_ns(record.completion_ns.unwrap_or_default() - record.arrival_ns),
            record.stats.marks_executed.to_string(),
            record.stats.instructions.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: most benchmarks switch occasionally; 183.equake / 171.swim / 172.mgrid\n\
         switch most often; 459.GemsFDTD and 473.astar have no phases and never switch."
    );
}
