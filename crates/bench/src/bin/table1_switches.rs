//! Table 1: core switches and isolated runtime per benchmark under the best
//! technique (Loop[45], 0.2 IPC threshold). Thin spec over the shared study
//! runner (`phase_bench::studies::table1`).

fn main() {
    phase_bench::run_study_main(
        "Table 1 — switches per benchmark (Loop[45], 0.2 threshold)",
        "Each benchmark runs alone on the AMP with the phase tuner; the table reports\n\
         the core switches it performed and its runtime. The 15 isolation runs are\n\
         independent cells fanned across the driver's worker threads.",
        phase_bench::studies::table1,
    );
}
