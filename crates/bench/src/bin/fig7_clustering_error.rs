//! Figure 7: robustness of the technique to static clustering error — a
//! fraction of blocks is deliberately placed in the wrong cluster before
//! marking.

use phase_bench::{experiment_config, init};
use phase_core::{comparison_plan, comparison_result, prepare_workload, ExperimentPlan, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Figure 7 — throughput improvement vs. clustering error",
        "Basic-block strategy, min block size 15, lookahead 0; 0%–30% of typed blocks are\n\
         flipped to the opposite cluster before phase marking. One comparison plan per\n\
         error level, all fanned across the driver together.",
    );

    let error_levels = [0.0, 0.10, 0.20, 0.30];
    let mut plan = ExperimentPlan::new();
    let mut per_level = Vec::new();
    for error in error_levels {
        let mut config = experiment_config(MarkingConfig::basic_block(15, 0));
        config.pipeline.clustering_error = error;
        let prepared = prepare_workload(&config);
        plan.extend(comparison_plan(
            format!("error={error:.2}"),
            &config,
            &prepared,
        ));
        per_level.push((config, prepared));
    }
    let outcome = phase_bench::driver().run(plan);

    let mut table = TextTable::new(vec![
        "Clustering error",
        "Throughput improvement %",
        "Avg time reduction %",
        "Phase marks executed",
    ]);
    for (error, (config, prepared)) in error_levels.iter().zip(&per_level) {
        let group = format!("error={error:.2}");
        let comparison = comparison_result(&group, &outcome, config, prepared)
            .expect("plan holds both cells of the group");
        table.add_row(vec![
            format!("{:.0}%", error * 100.0),
            format!("{:.2}", comparison.throughput.improvement_pct),
            format!("{:.2}", comparison.fairness.avg_time_decrease_pct),
            comparison.tuned.total_marks_executed.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: almost no loss at 10% error, still a significant gain at 20%, and\n\
         little improvement left at 30%."
    );
}
