//! Figure 7: robustness of the technique to static clustering error — a
//! fraction of blocks is deliberately placed in the wrong cluster before
//! marking.

use phase_bench::{experiment_config, init};
use phase_core::{prepare_workload, run_comparison_prepared, TextTable};
use phase_marking::MarkingConfig;

fn main() {
    init(
        "Figure 7 — throughput improvement vs. clustering error",
        "Basic-block strategy, min block size 15, lookahead 0; 0%–30% of typed blocks are\n\
         flipped to the opposite cluster before phase marking.",
    );

    let error_levels = [0.0, 0.10, 0.20, 0.30];
    let mut table = TextTable::new(vec![
        "Clustering error",
        "Throughput improvement %",
        "Avg time reduction %",
        "Phase marks executed",
    ]);
    for error in error_levels {
        let mut config = experiment_config(MarkingConfig::basic_block(15, 0));
        config.pipeline.clustering_error = error;
        let prepared = prepare_workload(&config);
        let outcome = run_comparison_prepared(&config, &prepared);
        table.add_row(vec![
            format!("{:.0}%", error * 100.0),
            format!("{:.2}", outcome.throughput.improvement_pct),
            format!("{:.2}", outcome.fairness.avg_time_decrease_pct),
            outcome.tuned.total_marks_executed.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper shape: almost no loss at 10% error, still a significant gain at 20%, and\n\
         little improvement left at 30%."
    );
}
