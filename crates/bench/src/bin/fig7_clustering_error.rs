//! Figure 7: robustness of the technique to static clustering error — a
//! fraction of blocks is deliberately placed in the wrong cluster before
//! marking. Thin spec over the shared study runner
//! (`phase_bench::studies::fig7`).

fn main() {
    phase_bench::run_study_main(
        "Figure 7 — throughput improvement vs. clustering error",
        "Basic-block strategy, min block size 15, lookahead 0; 0%–30% of typed blocks are\n\
         flipped to the opposite cluster before phase marking. One comparison plan per\n\
         error level, all fanned across the driver together.",
        phase_bench::studies::fig7,
    );
}
