//! Tracing-overhead gate (`BENCH_trace.json`): the same fixed comparison
//! workload measured three ways —
//!
//! * **untraced** — tracing flag off, no context installed: the permanent
//!   cost of the probe sites compiled into the hot paths;
//! * **disabled** — flag still off, but a trace context is installed the way
//!   a serving request would: every probe site must cost one relaxed atomic
//!   load and nothing else;
//! * **enabled** — flag on, context installed: full recording into the
//!   per-thread rings.
//!
//! The gate fails (exit 1) when disabled-mode overhead exceeds 1% or
//! enabled-mode overhead exceeds 10% of untraced throughput. With
//! `--trace-out=PATH` the enabled run's records are dumped as NDJSON.

use std::time::Instant;

use phase_core::{run_comparison, JsonValue};
use phase_marking::MarkingConfig;
use phase_trace as trace;

const DISABLED_GATE_PCT: f64 = 1.0;
const ENABLED_GATE_PCT: f64 = 10.0;

/// Wall seconds for one full comparison run (fresh state per call, so every
/// repeat simulates instead of hitting a cache).
fn measure_once(settings: &phase_bench::BenchSettings) -> f64 {
    let config = phase_bench::experiment_config_with(settings, MarkingConfig::loop_level(45));
    let start = Instant::now();
    let result = run_comparison(&config);
    let wall_s = start.elapsed().as_secs_f64();
    assert!(result.tuned.total_instructions > 0, "the workload ran");
    wall_s
}

/// One interleaved measurement round: one repeat of every mode, with the
/// starting mode rotated by round index — periodic external load with a
/// period near the round length would otherwise keep hitting the same
/// position in every round and masquerade as a consistent per-mode bias.
fn run_round(
    round: u64,
    settings: &phase_bench::BenchSettings,
    trace_id: u64,
    untraced: &mut Vec<f64>,
    disabled: &mut Vec<f64>,
    enabled: &mut Vec<f64>,
) {
    for slot in 0..3 {
        match (round + slot) % 3 {
            0 => untraced.push(measure_once(settings)),
            1 => {
                // install() is inert while the flag is off — this measures
                // exactly the serving path's per-probe cost when tracing is
                // compiled in.
                let _ctx = trace::install(trace::new_trace_id(), trace::Lane::Bench, 0);
                disabled.push(measure_once(settings));
            }
            _ => {
                trace::set_enabled(true);
                let _ctx = trace::install(trace_id, trace::Lane::Bench, 0);
                enabled.push(measure_once(settings));
                trace::set_enabled(false);
            }
        }
    }
}

fn main() {
    let settings = phase_bench::init(
        "Tracing-overhead gate (BENCH_trace.json)",
        "Measures the comparison workload untraced, with tracing compiled in but\n\
         disabled, and with tracing enabled; gates disabled overhead <1% and\n\
         enabled overhead <10%, and dumps the enabled run's NDJSON with --trace-out.",
    );
    // Overhead is estimated two ways and the gate takes the smaller:
    //
    // * **ratio of floors** (best-of-N): external noise only ever adds
    //   time, so each mode's minimum converges to its true cost — but one
    //   ultra-quiet window caught by the baseline alone inflates it;
    // * **median of per-round ratios**: the runs of one round are adjacent
    //   in time, so sustained load cancels inside each ratio — but a noise
    //   pattern covering most rounds inflates it.
    //
    // The two false-failure modes are complementary, while a *real*
    // regression raises both estimates. A fixed round count can still get
    // unlucky on a busy box, so the gate is also adaptive — after the base
    // rounds it keeps adding rounds (up to `max_rounds`) only while an
    // overhead is above its threshold. That retries noise away without
    // loosening the gate.
    let base_rounds: u64 = if settings.quick { 5 } else { 11 };
    let max_rounds = base_rounds * 4;

    // One warm-up run absorbs first-touch costs before anything is timed.
    trace::set_ring_capacity(1 << 17);
    let trace_id = trace::new_trace_id();
    trace::set_enabled(false);
    measure_once(&settings);
    let (mut untraced, mut disabled, mut enabled) = (Vec::new(), Vec::new(), Vec::new());
    let best = |samples: &[f64]| samples.iter().copied().fold(f64::INFINITY, f64::min);
    let overhead = |mode: &[f64], baseline: &[f64]| {
        let floors = best(mode) / best(baseline).max(1e-12);
        let mut ratios: Vec<f64> = mode
            .iter()
            .zip(baseline)
            .map(|(m, b)| m / b.max(1e-12))
            .collect();
        ratios.sort_by(f64::total_cmp);
        let median = ratios[ratios.len() / 2];
        ((floors.min(median) - 1.0) * 100.0).max(0.0)
    };
    let mut rounds = 0;
    while rounds < base_rounds
        || (rounds < max_rounds
            && (overhead(&disabled, &untraced) >= DISABLED_GATE_PCT
                || overhead(&enabled, &untraced) >= ENABLED_GATE_PCT))
    {
        run_round(
            rounds,
            &settings,
            trace_id,
            &mut untraced,
            &mut disabled,
            &mut enabled,
        );
        rounds += 1;
    }
    let (untraced_s, disabled_s, enabled_s) = (best(&untraced), best(&disabled), best(&enabled));
    let records = trace::take(trace_id);
    let dropped = trace::dropped();
    assert!(
        !records.is_empty(),
        "the enabled run must actually record events"
    );

    let disabled_pct = overhead(&disabled, &untraced);
    let enabled_pct = overhead(&enabled, &untraced);
    let runs_per_sec = |wall_s: f64| 1.0 / wall_s.max(1e-12);
    println!(
        "untraced {:>9.4}ms   disabled {:>9.4}ms (+{disabled_pct:.2}%)   \
         enabled {:>9.4}ms (+{enabled_pct:.2}%)   {} records, {rounds} rounds",
        untraced_s * 1e3,
        disabled_s * 1e3,
        enabled_s * 1e3,
        records.len()
    );
    if dropped > 0 {
        println!("ring overflow dropped {dropped} records (oldest-first)");
    }

    if let Some(path) = &settings.trace_out {
        match phase_bench::write_trace_ndjson(path, &records) {
            Ok(()) => println!("wrote {} ({} trace records)", path.display(), records.len()),
            Err(error) => {
                eprintln!("failed to write {}: {error}", path.display());
                std::process::exit(1);
            }
        }
    }

    let disabled_ok = disabled_pct < DISABLED_GATE_PCT;
    let enabled_ok = enabled_pct < ENABLED_GATE_PCT;
    let mode_row = |label: &str, wall_s: f64, pct: Option<f64>| {
        let mut row = JsonValue::object()
            .field("label", label)
            .field("wall_s", wall_s)
            .field("runs_per_sec", runs_per_sec(wall_s));
        if let Some(pct) = pct {
            row = row.field("overhead_pct", pct);
        }
        row
    };
    let mut doc = JsonValue::object();
    for (name, value) in settings.meta_json() {
        doc = doc.field(name, value);
    }
    let doc = doc
        .field("rounds", rounds)
        .field(
            "rows",
            vec![
                mode_row("untraced", untraced_s, None),
                mode_row("disabled", disabled_s, Some(disabled_pct)),
                mode_row("enabled", enabled_s, Some(enabled_pct)),
            ],
        )
        .field("trace_records", records.len() as u64)
        .field("dropped_records", dropped)
        .field("disabled_gate_pct", DISABLED_GATE_PCT)
        .field("enabled_gate_pct", ENABLED_GATE_PCT)
        .field("disabled_gate_ok", disabled_ok)
        .field("enabled_gate_ok", enabled_ok);
    let path = settings.out_path("BENCH_trace.json");
    let written = phase_bench::write_report_file(&path, &doc.render()).map(|()| path);
    phase_bench::announce_report(written, "BENCH_trace.json");

    if !disabled_ok {
        eprintln!(
            "TRACE GATE FAILED: disabled-tracing overhead {disabled_pct:.2}% \
             exceeds {DISABLED_GATE_PCT}%"
        );
        std::process::exit(1);
    }
    if !enabled_ok {
        eprintln!(
            "TRACE GATE FAILED: enabled-tracing overhead {enabled_pct:.2}% \
             exceeds {ENABLED_GATE_PCT}%"
        );
        std::process::exit(1);
    }
    println!(
        "trace gate passed: disabled +{disabled_pct:.2}% (<{DISABLED_GATE_PCT}%), \
         enabled +{enabled_pct:.2}% (<{ENABLED_GATE_PCT}%)"
    );
}
