//! The study specs and renderers behind every regeneration binary.
//!
//! Each of the paper's tables and figures is described here twice over:
//!
//! * a **spec builder** (`table1`, `fig6`, ...) turning [`BenchSettings`]
//!   into the declarative [`StudySpec`] the shared `phase-core` runner
//!   consumes, and
//! * a **renderer** (`render_table1`, ...) turning the unified
//!   [`StudyReport`] back into the exact text the legacy hand-rolled binary
//!   printed.
//!
//! The binaries are thin `spec → run_study → render → write_study_report`
//! pipelines, and the golden tests in `tests/golden.rs` run the same spec
//! and renderer against outputs captured from the legacy binaries, proving
//! the spec-driven path reproduces their numbers bit-for-bit.

use phase_amp::{CoreId, CostModel, MachineSpec};
use phase_core::{
    format_duration_ns, ComparisonPoint, FamilySpec, MetricValue, PerfWorkload, Policy, StudyMode,
    StudyReport, StudyRow, StudySpec, TextTable,
};
use phase_marking::{MarkingConfig, MARK_SIZE_BYTES};
use phase_metrics::SummaryStats;
use phase_online::OnlineConfig;
use phase_runtime::TunerConfig;
use phase_sched::SimConfig;
use phase_workload::{CatalogSpec, WorkloadSpec};

use crate::{experiment_config_with, overhead_variants, BenchSettings};

/// Catalogue scale of the static and isolation studies.
fn catalog_scale(quick: bool) -> f64 {
    if quick {
        0.2
    } else {
        1.0
    }
}

/// The body shared by most renderers: the table followed by a footer note,
/// exactly as `println!` would emit them.
fn body(table: &TextTable, footer: &str) -> String {
    format!("{}\n{footer}\n", table.render())
}

/// Every study this crate defines, in the order `run_studies` executes them.
pub fn all(settings: &BenchSettings) -> Vec<StudySpec> {
    vec![
        fig3(settings),
        fig4(settings),
        table1(settings),
        fig5(settings),
        fig6(settings),
        fig7(settings),
        sweep_lookahead(settings),
        sweep_min_size(settings),
        table2(settings),
        fig8(settings),
        table_mark_stats(settings),
        exp_three_core(settings),
        online(settings),
    ]
}

/// Renders a report through the renderer matching its study name.
pub fn render(report: &StudyReport) -> String {
    match report.study.as_str() {
        "fig3" => render_fig3(report),
        "fig4" => render_fig4(report),
        "table1" => render_table1(report),
        "fig5" => render_fig5(report),
        "fig6" => render_fig6(report),
        "fig7" => render_fig7(report),
        "sweep_lookahead" => render_sweep_lookahead(report),
        "sweep_min_size" => render_sweep_min_size(report),
        "table2" => render_table2(report),
        "fig8" => render_fig8(report),
        "table_mark_stats" => render_table_mark_stats(report),
        "three_core" => render_exp_three_core(report),
        "online" => render_online(report),
        "engine" => render_engine(report),
        "tail" => render_tail(report),
        other => panic!("no renderer for study '{other}'"),
    }
}

// --- Engine perf gate: BENCH_engine.json. ---

/// The engine/driver wall-clock study behind `bench_engine` and the CI
/// sims/sec perf gate: both engines on the fig4 and bursty workloads, then
/// the driver on the Table 1 isolation plan at 1 and 4 workers.
///
/// Under `--perf` every knob is pinned (scale 0.5, 84 slots, catalogue seed
/// 7, workload seeds 84/21, 5 samples) regardless of `--quick`/`--slots`, so
/// sims/sec is comparable run-to-run and against the committed baseline.
pub fn engine(settings: &BenchSettings) -> StudySpec {
    let pinned;
    let settings = if settings.perf {
        pinned = BenchSettings {
            quick: false,
            slots: Some(84),
            ..settings.clone()
        };
        &pinned
    } else {
        settings
    };
    let quick = settings.quick;
    let scale = if quick { 0.1 } else { 0.5 };
    let slots = settings.slots_or(if quick { 18 } else { 84 });
    let sim = experiment_config_with(settings, MarkingConfig::paper_best()).sim;
    StudySpec {
        name: "engine".into(),
        title: "Engine + driver baseline (BENCH_engine.json)".into(),
        mode: StudyMode::EnginePerf {
            catalog: CatalogSpec::standard(scale, 7),
            isolation_catalog: CatalogSpec::standard(catalog_scale(quick), 7),
            machine: MachineSpec::core2_quad_amp(),
            workloads: vec![
                PerfWorkload {
                    name: "fig4".into(),
                    workload: WorkloadSpec::Random {
                        slots,
                        jobs_per_slot: 1,
                        seed: 84,
                    },
                    horizon_ns: sim.horizon_ns,
                },
                // Long idle gaps between waves: the event engine's best case.
                PerfWorkload {
                    name: "bursty".into(),
                    workload: WorkloadSpec::Bursty {
                        slots: slots.min(12),
                        jobs_per_slot: 1,
                        waves: 4,
                        gap_ns: 50_000_000.0,
                        seed: 21,
                    },
                    horizon_ns: None,
                },
            ],
            pipeline: phase_core::PipelineConfig::with_marking(MarkingConfig::paper_best()),
            tuner: TunerConfig::paper_table1(),
            thread_counts: vec![1, 4],
            sim,
            samples: if quick { 3 } else { 5 },
        },
    }
}

/// Renders [`engine`] as a measurement table with sims/sec and speedups.
pub fn render_engine(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec!["Measurement", "Seconds", "Sims/sec", "Speedup"]);
    for row in &report.rows {
        let speedup = row
            .get("speedup_vs_round")
            .or_else(|| row.get("parallel_speedup"))
            .and_then(MetricValue::as_f64);
        table.add_row(vec![
            row.label.clone(),
            format!("{:.4}", row.f64("wall_s")),
            format!("{:.2}", row.f64("sims_per_sec")),
            speedup.map(|s| format!("{s:.2}x")).unwrap_or_default(),
        ]);
    }
    body(
        &table,
        "sims/sec: full simulations per wall-clock second (best of N samples); \
         engine rows are one simulation each, table1 rows one isolation plan.",
    )
}

// --- Figure 3: space overhead. ---

/// Figure 3 — space overhead of phase marks per technique variant.
pub fn fig3(settings: &BenchSettings) -> StudySpec {
    StudySpec {
        name: "fig3".into(),
        title: "Figure 3 — space overhead".into(),
        mode: StudyMode::MarkStatsPerVariant {
            catalog: CatalogSpec::standard(catalog_scale(settings.quick), 7),
            machine: MachineSpec::core2_quad_amp(),
            variants: overhead_variants(),
        },
    }
}

/// Renders [`fig3`] as the legacy table.
pub fn render_fig3(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Technique",
        "Min %",
        "Q1 %",
        "Median %",
        "Q3 %",
        "Max %",
        "Mean marks",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            format!("{:.2}", row.f64("space_min")),
            format!("{:.2}", row.f64("space_q1")),
            format!("{:.2}", row.f64("space_median")),
            format!("{:.2}", row.f64("space_q3")),
            format!("{:.2}", row.f64("space_max")),
            format!("{:.1}", row.f64("marks_mean")),
        ]);
    }
    body(
        &table,
        "paper: less than 4% space overhead for the best technique (Loop[45]),\n\
         overhead decreasing as the minimum section size and lookahead grow.",
    )
}

// --- Figure 4: time overhead. ---

/// Figure 4 — time overhead of the phase marks (all-cores policy).
pub fn fig4(settings: &BenchSettings) -> StudySpec {
    let quick = settings.quick;
    StudySpec {
        name: "fig4".into(),
        title: "Figure 4 — time overhead of phase marks (workload size 84)".into(),
        mode: StudyMode::MarkOverhead {
            catalog: CatalogSpec::standard(if quick { 0.1 } else { 0.5 }, 7),
            machine: MachineSpec::core2_quad_amp(),
            workload: WorkloadSpec::Random {
                slots: settings.slots_or(84),
                jobs_per_slot: 1,
                seed: 84,
            },
            variants: vec![
                MarkingConfig::basic_block(15, 0),
                MarkingConfig::basic_block(15, 2),
                MarkingConfig::basic_block(45, 0),
                MarkingConfig::interval(30),
                MarkingConfig::interval(45),
                MarkingConfig::loop_level(30),
                MarkingConfig::loop_level(45),
                MarkingConfig::loop_level(60),
            ],
            sim: experiment_config_with(settings, MarkingConfig::paper_best()).sim,
        },
    }
}

/// Renders [`fig4`] as the legacy table.
pub fn render_fig4(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Technique",
        "Marks executed",
        "Baseline instrs",
        "Instrumented instrs",
        "Time overhead %",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            row.u64("marks_executed").to_string(),
            row.u64("baseline_instructions").to_string(),
            row.u64("run_instructions").to_string(),
            format!("{:.3}", row.f64("overhead_pct")),
        ]);
    }
    body(
        &table,
        "paper: as little as 0.14% time overhead, lowest for the loop technique because it\n\
         eliminates marks inside nested loops and in functions called from loops.",
    )
}

// --- Table 1 / Figure 5: isolation runs. ---

fn isolation_mode(settings: &BenchSettings) -> StudyMode {
    StudyMode::Isolation {
        catalog: CatalogSpec::standard(catalog_scale(settings.quick), 7),
        machine: MachineSpec::core2_quad_amp(),
        pipeline: phase_core::PipelineConfig::with_marking(MarkingConfig::paper_best()),
        tuner: TunerConfig::paper_table1(),
        sim: SimConfig::default(),
    }
}

/// Table 1 — switches per benchmark under the best technique.
pub fn table1(settings: &BenchSettings) -> StudySpec {
    StudySpec {
        name: "table1".into(),
        title: "Table 1 — switches per benchmark (Loop[45], 0.2 threshold)".into(),
        mode: isolation_mode(settings),
    }
}

/// Renders [`table1`] as the legacy table.
pub fn render_table1(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Switches",
        "Runtime",
        "Marks executed",
        "Instructions",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            row.u64("switches").to_string(),
            format_duration_ns(row.f64("runtime_ns")),
            row.u64("marks_executed").to_string(),
            row.u64("instructions").to_string(),
        ]);
    }
    body(
        &table,
        "paper shape: most benchmarks switch occasionally; 183.equake / 171.swim / 172.mgrid\n\
         switch most often; 459.GemsFDTD and 473.astar have no phases and never switch.",
    )
}

/// Figure 5 — average cycles per core switch per benchmark.
pub fn fig5(settings: &BenchSettings) -> StudySpec {
    StudySpec {
        name: "fig5".into(),
        title: "Figure 5 — average cycles per core switch".into(),
        mode: isolation_mode(settings),
    }
}

/// Renders [`fig5`] as the legacy table.
pub fn render_fig5(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Cycles",
        "Switches",
        "Cycles per switch",
        "Amortises 1000-cycle switch?",
    ]);
    for row in &report.rows {
        let switches = row.u64("switches");
        let cycles = row.f64("cycles");
        let per_switch = if switches == 0 {
            f64::INFINITY
        } else {
            cycles / switches as f64
        };
        table.add_row(vec![
            row.label.clone(),
            format!("{cycles:.3e}"),
            switches.to_string(),
            if per_switch.is_finite() {
                format!("{per_switch:.3e}")
            } else {
                "no switches".to_string()
            },
            if per_switch > 10_000.0 {
                "yes".into()
            } else {
                "marginal".into()
            },
        ]);
    }
    body(
        &table,
        "paper shape: most benchmarks execute millions to billions of cycles per switch,\n\
         comfortably amortising the ~1000-cycle switch cost.",
    )
}

// --- Figure 6: IPC-threshold sweep. ---

/// Figure 6 — throughput vs. the tuner's IPC threshold `δ`.
pub fn fig6(settings: &BenchSettings) -> StudySpec {
    let thresholds = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5];
    let points = thresholds
        .iter()
        .map(|&threshold| {
            let mut config = experiment_config_with(settings, MarkingConfig::basic_block(15, 0));
            config.tuner.ipc_threshold = threshold;
            ComparisonPoint {
                label: format!("{threshold:.2}"),
                config,
            }
        })
        .collect();
    StudySpec {
        name: "fig6".into(),
        title: "Figure 6 — throughput vs. IPC threshold".into(),
        mode: StudyMode::Comparison { points },
    }
}

/// Renders [`fig6`] as the legacy table.
pub fn render_fig6(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "IPC threshold",
        "Throughput improvement %",
        "Avg time reduction %",
        "Core switches",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            format!("{:.2}", row.f64("throughput_improvement_pct")),
            format!("{:.2}", row.f64("avg_time_decrease_pct")),
            row.u64("tuned_core_switches").to_string(),
        ]);
    }
    body(
        &table,
        "paper shape: extreme thresholds degrade throughput (everything migrates away from\n\
         one core type at δ≈0; nothing well-suited reaches the efficient cores at large δ);\n\
         an interior value balances the assignment.",
    )
}

// --- Figure 7: clustering-error sweep. ---

/// Figure 7 — robustness to static clustering error.
pub fn fig7(settings: &BenchSettings) -> StudySpec {
    let error_levels = [0.0, 0.10, 0.20, 0.30];
    let points = error_levels
        .iter()
        .map(|&error| {
            let mut config = experiment_config_with(settings, MarkingConfig::basic_block(15, 0));
            config.pipeline.clustering_error = error;
            ComparisonPoint {
                label: format!("{:.0}%", error * 100.0),
                config,
            }
        })
        .collect();
    StudySpec {
        name: "fig7".into(),
        title: "Figure 7 — throughput improvement vs. clustering error".into(),
        mode: StudyMode::Comparison { points },
    }
}

/// Renders [`fig7`] as the legacy table.
pub fn render_fig7(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Clustering error",
        "Throughput improvement %",
        "Avg time reduction %",
        "Phase marks executed",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            format!("{:.2}", row.f64("throughput_improvement_pct")),
            format!("{:.2}", row.f64("avg_time_decrease_pct")),
            row.u64("tuned_marks_executed").to_string(),
        ]);
    }
    body(
        &table,
        "paper shape: almost no loss at 10% error, still a significant gain at 20%, and\n\
         little improvement left at 30%.",
    )
}

// --- Lookahead sweep. ---

/// Section IV-C2 — lookahead-depth sweep of the basic-block technique.
pub fn sweep_lookahead(settings: &BenchSettings) -> StudySpec {
    let points = [0usize, 1, 2, 3]
        .iter()
        .map(|&depth| {
            let config = experiment_config_with(settings, MarkingConfig::basic_block(15, depth));
            ComparisonPoint {
                label: config.pipeline.marking.to_string(),
                config,
            }
        })
        .collect();
    StudySpec {
        name: "sweep_lookahead".into(),
        title: "Lookahead-depth sweep (Section IV-C2)".into(),
        mode: StudyMode::Comparison { points },
    }
}

/// Renders [`sweep_lookahead`] as the legacy table.
pub fn render_sweep_lookahead(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Technique",
        "Static marks (catalogue)",
        "Throughput improvement %",
        "Avg time reduction %",
        "Max-stretch change %",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            row.u64("static_marks").to_string(),
            format!("{:.2}", row.f64("throughput_improvement_pct")),
            format!("{:.2}", row.f64("avg_time_decrease_pct")),
            format!("{:.2}", row.f64("max_stretch_decrease_pct")),
        ]);
    }
    body(
        &table,
        "paper shape: less lookahead gives higher throughput but at a significant cost in\n\
         fairness; deeper lookahead removes marks and tempers both effects.",
    )
}

// --- Minimum-size sweep. ---

/// Section IV-C4 — minimum-section-size sweep across all granularities.
pub fn sweep_min_size(settings: &BenchSettings) -> StudySpec {
    let variants = [
        MarkingConfig::basic_block(10, 0),
        MarkingConfig::basic_block(15, 0),
        MarkingConfig::basic_block(20, 0),
        MarkingConfig::interval(30),
        MarkingConfig::interval(45),
        MarkingConfig::interval(60),
        MarkingConfig::loop_level(30),
        MarkingConfig::loop_level(45),
        MarkingConfig::loop_level(60),
    ];
    let points = variants
        .iter()
        .map(|&marking| ComparisonPoint {
            label: marking.to_string(),
            config: experiment_config_with(settings, marking),
        })
        .collect();
    StudySpec {
        name: "sweep_min_size".into(),
        title: "Minimum-section-size sweep (Section IV-C4)".into(),
        mode: StudyMode::Comparison { points },
    }
}

/// Renders [`sweep_min_size`] as the legacy table.
pub fn render_sweep_min_size(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Technique",
        "Static marks (catalogue)",
        "Throughput improvement %",
        "Avg time reduction %",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            row.u64("static_marks").to_string(),
            format!("{:.2}", row.f64("throughput_improvement_pct")),
            format!("{:.2}", row.f64("avg_time_decrease_pct")),
        ]);
    }
    body(
        &table,
        "paper shape: smaller minimum sizes catch more transitions (higher potential gain,\n\
         more overhead); larger minimums may miss small hot loops.",
    )
}

// --- Table 2: fairness comparison. ---

fn table2_quick_or_full(settings: &BenchSettings, quick: Vec<MarkingConfig>) -> Vec<MarkingConfig> {
    if settings.quick {
        quick
    } else {
        MarkingConfig::table2_variants()
    }
}

fn comparison_over_variants(
    settings: &BenchSettings,
    variants: Vec<MarkingConfig>,
) -> Vec<ComparisonPoint> {
    variants
        .into_iter()
        .map(|marking| ComparisonPoint {
            label: marking.to_string(),
            config: experiment_config_with(settings, marking),
        })
        .collect()
}

/// Table 2 — fairness comparison to the stock scheduler.
pub fn table2(settings: &BenchSettings) -> StudySpec {
    let variants = table2_quick_or_full(
        settings,
        vec![
            MarkingConfig::basic_block(15, 0),
            MarkingConfig::interval(45),
            MarkingConfig::loop_level(45),
        ],
    );
    StudySpec {
        name: "table2".into(),
        title: "Table 2 — fairness comparison to the stock scheduler".into(),
        mode: StudyMode::Comparison {
            points: comparison_over_variants(settings, variants),
        },
    }
}

/// Renders [`table2`] as the legacy table with its best-variant note.
pub fn render_table2(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Technique",
        "Max-Flow %",
        "Max-Stretch %",
        "Avg. Time %",
        "Throughput %",
    ]);
    let mut best: Option<(String, f64)> = None;
    for row in &report.rows {
        let avg = row.f64("avg_time_decrease_pct");
        if best.as_ref().map(|(_, b)| avg > *b).unwrap_or(true) {
            best = Some((row.label.clone(), avg));
        }
        table.add_row(vec![
            row.label.clone(),
            format!("{:.2}", row.f64("max_flow_decrease_pct")),
            format!("{:.2}", row.f64("max_stretch_decrease_pct")),
            format!("{avg:.2}"),
            format!("{:.2}", row.f64("throughput_improvement_pct")),
        ]);
    }
    let mut out = format!("{}\n", table.render());
    if let Some((name, avg)) = best {
        out.push_str(&format!(
            "best average-process-time reduction: {name} at {avg:.2}%\n"
        ));
    }
    out.push_str(
        "paper: interval and loop variants dominate the basic-block variants (several of\n\
         which regress); the best run (Loop[45]) improves max-flow by 12.04%, max-stretch by\n\
         20.41%, and average process time by 35.95%.\n",
    );
    out
}

// --- Figure 8: speedup vs. fairness. ---

/// Figure 8 — the speedup-versus-fairness trade-off.
pub fn fig8(settings: &BenchSettings) -> StudySpec {
    let variants = table2_quick_or_full(
        settings,
        vec![
            MarkingConfig::basic_block(15, 0),
            MarkingConfig::basic_block(15, 2),
            MarkingConfig::interval(45),
            MarkingConfig::loop_level(45),
        ],
    );
    StudySpec {
        name: "fig8".into(),
        title: "Figure 8 — speedup vs. fairness trade-off".into(),
        mode: StudyMode::Comparison {
            points: comparison_over_variants(settings, variants),
        },
    }
}

/// Renders [`fig8`] as the legacy table (no footer).
pub fn render_fig8(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Technique",
        "Speedup (avg time reduction %)",
        "Max-stretch (tuned)",
        "Max-stretch (stock)",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            format!("{:.2}", row.f64("avg_time_decrease_pct")),
            format!("{:.2}", row.f64("tuned_max_stretch")),
            format!("{:.2}", row.f64("stock_max_stretch")),
        ]);
    }
    format!("{}\n", table.render())
}

// --- Mark statistics. ---

/// Sections III / IV-B — phase-mark statistics for the best technique.
pub fn table_mark_stats(settings: &BenchSettings) -> StudySpec {
    StudySpec {
        name: "table_mark_stats".into(),
        title: "Phase-mark statistics (Sections III and IV-B)".into(),
        mode: StudyMode::MarkStatsPerBenchmark {
            catalog: CatalogSpec::standard(catalog_scale(settings.quick), 7),
            machine: MachineSpec::core2_quad_amp(),
            pipeline: phase_core::PipelineConfig::with_marking(MarkingConfig::paper_best()),
        },
    }
}

/// Renders [`table_mark_stats`] with its summary and switch-cost notes.
pub fn render_table_mark_stats(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Phase marks",
        "Added bytes",
        "Overhead %",
    ]);
    let mut mark_counts = Vec::new();
    for row in &report.rows {
        mark_counts.push(row.u64("marks") as f64);
        table.add_row(vec![
            row.label.clone(),
            row.u64("marks").to_string(),
            row.u64("added_bytes").to_string(),
            format!("{:.2}", row.f64("space_overhead_pct")),
        ]);
    }
    let summary = SummaryStats::of(&mark_counts);
    let mut out = format!("{}\n", table.render());
    out.push_str(&format!(
        "marks per benchmark: mean {:.2} (paper: 20.24 for Loop[45])\n",
        summary.mean
    ));
    out.push_str(&format!(
        "bytes per mark: {MARK_SIZE_BYTES} (paper: at most 78 bytes)\n"
    ));
    let cost = CostModel::new(MachineSpec::core2_quad_amp());
    let (cycles, nanos_fast) = cost.core_switch_cost(CoreId(0));
    let (_, nanos_slow) = cost.core_switch_cost(CoreId(2));
    out.push_str(&format!(
        "core switch cost: {cycles} cycles ({nanos_fast:.0} ns on a fast core, {nanos_slow:.0} ns on a slow core; paper: ~1000 cycles)\n"
    ));
    out
}

// --- 3-core AMP. ---

/// Section VII — the 3-core AMP configuration next to the 4-core machine.
pub fn exp_three_core(settings: &BenchSettings) -> StudySpec {
    let points = [MachineSpec::core2_quad_amp(), MachineSpec::three_core_amp()]
        .into_iter()
        .map(|machine| {
            let mut config = experiment_config_with(settings, MarkingConfig::paper_best());
            config.machine = machine.clone();
            ComparisonPoint {
                label: machine.name,
                config,
            }
        })
        .collect();
    StudySpec {
        name: "three_core".into(),
        title: "3-core AMP (Section VII)".into(),
        mode: StudyMode::Comparison { points },
    }
}

/// Renders [`exp_three_core`] as the legacy table.
pub fn render_exp_three_core(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Machine",
        "Avg time reduction %",
        "Max-flow %",
        "Max-stretch %",
        "Throughput %",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            format!("{:.2}", row.f64("avg_time_decrease_pct")),
            format!("{:.2}", row.f64("max_flow_decrease_pct")),
            format!("{:.2}", row.f64("max_stretch_decrease_pct")),
            format!("{:.2}", row.f64("throughput_improvement_pct")),
        ]);
    }
    body(
        &table,
        "paper: performance on the 3-core setup is similar to the 4-core one (~32% speedup).",
    )
}

// --- Online vs. static. ---

/// The online-versus-static head-to-head over the four workload families.
pub fn online(settings: &BenchSettings) -> StudySpec {
    let quick = settings.quick;
    let slots = settings.slots_or(8);
    let jobs_per_slot = if quick { 5 } else { 6 };
    let scale = if quick { 0.2 } else { 1.0 };
    let intervals: Vec<f64> = match settings.interval_override_ns {
        Some(ns) => vec![ns],
        None if quick => vec![100_000.0, 200_000.0],
        None => vec![100_000.0, 200_000.0, 400_000.0],
    };
    let phase_counts: &[usize] = if quick { &[2, 8] } else { &[2, 4, 8] };

    let standard = CatalogSpec::standard(scale, 7);
    // The drifting family keeps its full-length phases even in quick mode —
    // collapsing them under the sampling interval would measure lag, not
    // tuning.
    let drifting = CatalogSpec::drifting(1.0, 7);
    let families = vec![
        FamilySpec {
            name: "standard".into(),
            catalog: standard,
            workload: WorkloadSpec::Random {
                slots,
                jobs_per_slot,
                seed: 31,
            },
        },
        FamilySpec {
            name: "mixed".into(),
            catalog: CatalogSpec::mixed(scale, 7),
            workload: WorkloadSpec::Random {
                slots,
                jobs_per_slot,
                seed: 31,
            },
        },
        FamilySpec {
            name: "bursty".into(),
            catalog: standard,
            workload: WorkloadSpec::Bursty {
                slots,
                jobs_per_slot,
                waves: 3,
                gap_ns: 5_000_000.0,
                seed: 31,
            },
        },
        FamilySpec {
            name: "drifting".into(),
            catalog: drifting,
            workload: WorkloadSpec::Drifting {
                slots,
                jobs_per_slot,
                seed: 31,
            },
        },
    ];

    let mut policies = vec![Policy::Stock, Policy::Tuned(TunerConfig::paper_table1())];
    for &interval in &intervals {
        for &phases in phase_counts {
            policies.push(Policy::Online(
                OnlineConfig::default()
                    .with_interval_ns(interval)
                    .with_max_phases(phases),
            ));
        }
    }

    StudySpec {
        name: "online".into(),
        title: "Online vs. static tuning (BENCH_online.json)".into(),
        mode: StudyMode::PolicyMatrix {
            families,
            policies,
            machine: MachineSpec::core2_quad_amp(),
            pipeline: phase_core::PipelineConfig::paper_best(),
            sim: SimConfig {
                horizon_ns: Some(40_000_000.0),
                ..SimConfig::default()
            },
            base_seed: 0xD61F7,
        },
    }
}

/// The drifting-family headline of the [`online`] study: `(static speedup,
/// best online speedup)` — the static tuner collapses to stock on unmarkable
/// binaries while the online tuner keeps tuning.
pub fn online_drifting_headline(report: &StudyReport) -> (f64, f64) {
    let drifting: Vec<&StudyRow> = report.rows_labeled("drifting");
    let static_speedup = drifting
        .iter()
        .find(|row| row.text("policy_kind") == "tuned")
        .map(|row| row.f64("speedup"))
        .unwrap_or(0.0);
    let best_online = drifting
        .iter()
        .filter(|row| row.text("policy_kind") == "online")
        .map(|row| row.f64("speedup"))
        .fold(0.0, f64::max);
    (static_speedup, best_online)
}

/// Renders [`online`] as the legacy table with the drifting headline.
pub fn render_online(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Family",
        "Policy",
        "Speedup vs stock",
        "Done",
        "Max-stretch",
        "Switches",
        "Phases/Retunes",
    ]);
    for row in &report.rows {
        let detail = match row.get("phases_created") {
            Some(_) => format!("{}/{}", row.u64("phases_created"), row.u64("retunes")),
            None => String::new(),
        };
        table.add_row(vec![
            row.label.clone(),
            row.text("policy").to_string(),
            format!("{:.3}x", row.f64("speedup")),
            format!("{}", row.u64("completed")),
            format!("{:.2}", row.f64("max_stretch")),
            format!("{}", row.u64("switches")),
            detail,
        ]);
    }
    let (static_speedup, best_online) = online_drifting_headline(report);
    let mut out = format!("{}\n", table.render());
    out.push_str(&format!(
        "drifting family: static speedup {static_speedup:.4} (collapsed to stock), \
         best online speedup {best_online:.4}\n"
    ));
    out
}

// --- Datacenter tail latency. ---

/// The datacenter tail-latency study behind `bench_tail`: open-loop
/// service-pipeline requests (NIC-poll → network-stack → application phases)
/// arriving on Poisson, bursty, and diurnal traces, each carrying a
/// completion deadline, swept over machine asymmetries × scheduling policies
/// and judged on p50/p99/p999 completion latency and SLO-violation fraction.
pub fn tail(settings: &BenchSettings) -> StudySpec {
    let quick = settings.quick;
    let scale = if quick { 0.5 } else { 1.0 };
    let slots = settings.slots_or(if quick { 8 } else { 16 });
    // Offered load is matched to the catalogue scale (full-scale requests
    // run ~2x longer), targeting moderate utilization so the tail comes from
    // queueing bursts, not steady-state saturation.
    let (rate_rps, duration_s) = if quick {
        (20_000.0, 0.005)
    } else {
        (10_000.0, 0.02)
    };
    // The SLO: every request must finish within this budget of being sent.
    let deadline_ns = 2_000_000.0;

    let catalog = CatalogSpec::service(scale, 7);
    let families = phase_workload::TraceShape::all()
        .iter()
        .map(|&trace| FamilySpec {
            name: trace.name().to_string(),
            catalog,
            workload: WorkloadSpec::OpenLoop {
                slots,
                trace,
                rate_rps,
                duration_s,
                deadline_ns: Some(deadline_ns),
                seed: 31,
            },
        })
        .collect();

    StudySpec {
        name: "tail".into(),
        title: "Datacenter tail latency (BENCH_tail.json)".into(),
        mode: StudyMode::TailLatency {
            families,
            machines: vec![MachineSpec::core2_quad_amp(), MachineSpec::three_core_amp()],
            policies: vec![
                Policy::Partition,
                Policy::Tuned(TunerConfig::paper_table1()),
                Policy::Online(OnlineConfig::default()),
            ],
            pipeline: phase_core::PipelineConfig::paper_best(),
            // No horizon: every request runs to completion, so a deadline
            // miss always means the request was late, never truncated.
            sim: SimConfig::default(),
            base_seed: 0x7A11,
        },
    }
}

/// Counts the (family, machine) sweep cells where a phase-aware policy
/// (anything but `partition`) achieves a strictly lower p99 than the static
/// partition cell — the study's headline claim.
pub fn tail_phase_aware_wins(report: &StudyReport) -> usize {
    let mut labels: Vec<&str> = report.rows.iter().map(|r| r.label.as_str()).collect();
    labels.dedup();
    labels
        .iter()
        .filter(|label| {
            let rows = report.rows_labeled(label);
            let Some(partition_p99) = rows
                .iter()
                .find(|row| row.text("policy_kind") == "partition")
                .map(|row| row.u64("p99_ns"))
            else {
                return false;
            };
            rows.iter().any(|row| {
                row.text("policy_kind") != "partition" && row.u64("p99_ns") < partition_p99
            })
        })
        .count()
}

/// Renders [`tail`] as a per-cell quantile table with the headline count.
pub fn render_tail(report: &StudyReport) -> String {
    let mut table = TextTable::new(vec![
        "Scenario",
        "Policy",
        "Requests",
        "Done",
        "p50",
        "p99",
        "p99.9",
        "SLO-viol",
        "Misses",
        "Underflows",
    ]);
    for row in &report.rows {
        table.add_row(vec![
            row.label.clone(),
            row.text("policy").to_string(),
            format!("{}", row.u64("requests")),
            format!("{}", row.u64("completed")),
            format_duration_ns(row.u64("p50_ns") as f64),
            format_duration_ns(row.u64("p99_ns") as f64),
            format_duration_ns(row.u64("p999_ns") as f64),
            format!("{:.2}%", row.f64("slo_violation") * 100.0),
            format!("{}", row.u64("deadline_misses")),
            format!("{}", row.u64("underflows")),
        ]);
    }
    let wins = tail_phase_aware_wins(report);
    let mut out = format!("{}\n", table.render());
    out.push_str(&format!(
        "{wins} sweep cell(s) where a phase-aware policy beats static partitioning on p99; \
         latency charged from scheduled release, SLO budget 2ms.\n"
    ));
    out
}
