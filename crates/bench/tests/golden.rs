//! Golden tests: the spec-driven study runner must reproduce the legacy
//! hand-rolled binaries bit-for-bit.
//!
//! The files under `tests/golden/` were captured from the pre-refactor
//! binaries (`PHASE_BENCH_QUICK=1 PHASE_BENCH_SLOTS=6 PHASE_BENCH_THREADS=2`,
//! everything after the header block) *before* those binaries were ported to
//! thin specs. Each test builds the same spec the ported binary builds, runs
//! it through a fresh artifact store, renders it with the shared renderer,
//! and compares against the capture — so the caching layer, the staged
//! pipeline, and the unified report path are all pinned to the legacy
//! numbers.
//!
//! Settings are passed explicitly (`BenchSettings::for_tests`) so the tests
//! never touch process-global environment variables and can run in parallel.

use phase_bench::{studies, BenchSettings};
use phase_core::{run_study, ArtifactStore, StudyReport, StudySpec};

fn settings() -> BenchSettings {
    BenchSettings::for_tests(6)
}

fn check(spec: StudySpec, golden: &str) -> StudyReport {
    let store = ArtifactStore::new();
    let report = run_study(&spec, &store, 2);
    let rendered = studies::render(&report);
    assert_eq!(
        rendered.trim_end_matches('\n'),
        golden.trim_end_matches('\n'),
        "study '{}' diverged from the legacy binary's output",
        spec.name
    );
    report
}

#[test]
fn fig3_matches_the_legacy_binary() {
    check(
        studies::fig3(&settings()),
        include_str!("golden/fig3_space_overhead.txt"),
    );
}

#[test]
fn fig4_matches_the_legacy_binary() {
    check(
        studies::fig4(&settings()),
        include_str!("golden/fig4_time_overhead.txt"),
    );
}

#[test]
fn fig5_matches_the_legacy_binary() {
    check(
        studies::fig5(&settings()),
        include_str!("golden/fig5_cycles_per_switch.txt"),
    );
}

#[test]
fn fig6_matches_the_legacy_binary() {
    let report = check(
        studies::fig6(&settings()),
        include_str!("golden/fig6_ipc_threshold.txt"),
    );
    // The sweep varies only the tuner threshold: one catalogue, one
    // instrumentation pass, one isolated-runtime measurement, and the seven
    // identical stock baseline cells collapse to a single computed cell.
    assert_eq!(report.store.stage("catalogs").unwrap().misses, 1);
    assert_eq!(report.store.stage("isolated_runtimes").unwrap().misses, 1);
    // Two driver workers can race a pair of identical cells into a double
    // miss, so the bound is conservative.
    let cells = report.store.stage("cells").unwrap();
    assert!(
        cells.hits >= 4,
        "the repeated stock baselines should hit ({cells:?})"
    );
}

#[test]
fn fig7_matches_the_legacy_binary() {
    let report = check(
        studies::fig7(&settings()),
        include_str!("golden/fig7_clustering_error.txt"),
    );
    // Error injection happens after typing, so all four levels share the
    // profiling pass and the baseline artifacts.
    assert_eq!(report.store.stage("ipc_profiles").unwrap().misses, 15);
    assert_eq!(report.store.stage("baselines").unwrap().misses, 15);
}

#[test]
fn fig8_matches_the_legacy_binary() {
    check(
        studies::fig8(&settings()),
        include_str!("golden/fig8_speedup_fairness.txt"),
    );
}

#[test]
fn table1_matches_the_legacy_binary() {
    check(
        studies::table1(&settings()),
        include_str!("golden/table1_switches.txt"),
    );
}

#[test]
fn table2_matches_the_legacy_binary() {
    check(
        studies::table2(&settings()),
        include_str!("golden/table2_fairness.txt"),
    );
}

#[test]
fn table_mark_stats_matches_the_legacy_binary() {
    check(
        studies::table_mark_stats(&settings()),
        include_str!("golden/table_mark_stats.txt"),
    );
}

#[test]
fn sweep_lookahead_matches_the_legacy_binary() {
    check(
        studies::sweep_lookahead(&settings()),
        include_str!("golden/sweep_lookahead.txt"),
    );
}

#[test]
fn sweep_min_size_matches_the_legacy_binary() {
    check(
        studies::sweep_min_size(&settings()),
        include_str!("golden/sweep_min_size.txt"),
    );
}

#[test]
fn exp_three_core_matches_the_legacy_binary() {
    check(
        studies::exp_three_core(&settings()),
        include_str!("golden/exp_three_core.txt"),
    );
}

#[test]
fn online_vs_static_matches_the_legacy_binary() {
    let report = check(
        studies::online(&settings()),
        include_str!("golden/online_vs_static.txt"),
    );
    let (static_speedup, best_online) = studies::online_drifting_headline(&report);
    assert_eq!(
        static_speedup, 1.0,
        "static tuning collapses to stock on unmarkable binaries"
    );
    assert!(best_online > 0.9);
}

#[test]
fn warm_reruns_are_bit_identical_and_answered_from_the_store() {
    let settings = settings();
    let store = ArtifactStore::new();
    let spec = studies::table1(&settings);
    let cold = run_study(&spec, &store, 2);
    let warm = run_study(&spec, &store, 2);
    assert_eq!(cold.rows, warm.rows);
    let cells = warm.store.stage("cells").unwrap();
    assert!(
        cells.hits >= cold.rows.len() as u64,
        "warm run should answer every isolation cell from the store ({cells:?})"
    );
}
