//! The datacenter tail-latency study's determinism and golden pins.
//!
//! The `BENCH_tail.json` rows must be bit-identical regardless of how many
//! driver workers computed them — the open-loop arrival traces, request
//! mixes, deadlines, and latency histograms are all pure functions of the
//! spec — and the quick-mode rows are pinned to a captured golden so a
//! drive-by change to the service catalogue, the arrival generator, or the
//! latency accounting cannot silently shift the quantiles.

use phase_bench::{studies, BenchSettings};
use phase_core::{run_study, ArtifactStore};

fn settings() -> BenchSettings {
    BenchSettings::for_tests(6)
}

#[test]
fn tail_rows_are_bit_identical_across_thread_counts() {
    let spec = studies::tail(&settings());
    let one = run_study(&spec, &ArtifactStore::new(), 1);
    let eight = run_study(&spec, &ArtifactStore::new(), 8);
    // Full-row equality: labels, every metric, and the complete latency CDF
    // curves (MetricValue::Cdf compares point-for-point).
    assert_eq!(one.rows, eight.rows);
}

#[test]
fn tail_quick_rows_match_the_golden_capture() {
    let spec = studies::tail(&settings());
    let report = run_study(&spec, &ArtifactStore::new(), 2);
    let rendered = studies::render(&report);
    let golden = include_str!("golden/tail.txt");
    assert_eq!(
        rendered.trim_end_matches('\n'),
        golden.trim_end_matches('\n'),
        "tail study diverged from the pinned quick-mode capture"
    );
}

#[test]
fn tail_headline_and_deadline_accounting_hold() {
    let spec = studies::tail(&settings());
    let report = run_study(&spec, &ArtifactStore::new(), 2);
    assert!(
        studies::tail_phase_aware_wins(&report) > 0,
        "at least one sweep cell must show a phase-aware policy beating the partition on p99"
    );
    // The bursty trace overloads the machine, so its cells must observe
    // real deadline misses — and the misses must agree with the violation
    // fraction row by row.
    let mut bursty_misses = 0;
    for row in &report.rows {
        let requests = row.u64("requests");
        let misses = row.u64("deadline_misses");
        let violation = row.f64("slo_violation");
        assert!(requests > 0);
        assert!((violation - misses as f64 / requests as f64).abs() < 1e-12);
        assert_eq!(
            row.u64("underflows"),
            0,
            "no latency subtraction underflowed"
        );
        if row.label.starts_with("bursty/") {
            bursty_misses += misses;
        }
    }
    assert!(
        bursty_misses > 0,
        "the overloaded bursty family missed deadlines"
    );
}
