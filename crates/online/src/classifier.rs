//! The streaming phase classifier: leader–follower / online-k-means.
//!
//! Each sampling interval is summarised as a point in a small feature space
//! (scaled IPC × scaled memory ratio). The classifier keeps a bounded table
//! of phase centroids; an arriving point joins the nearest centroid if it is
//! close enough, founds a new phase while the table has room, and otherwise
//! joins the nearest centroid regardless (the table is bounded by
//! construction, mirroring the fixed number of phase types the static
//! pipeline works with). Matched centroids track their phase with an
//! exponential-decay update, so a phase whose behaviour drifts drags its
//! centroid along — which is exactly the signal the adaptive retuner watches.
//!
//! The classifier is a *pure stream function*: its state after observing a
//! sequence of points depends only on that sequence, never on how the
//! sequence was batched. The batch-invariance proptest at the workspace root
//! holds it to that.

/// Identifier of a detected phase within one process's classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhaseId(pub u32);

impl PhaseId {
    /// The phase id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PhaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "φ{}", self.0)
    }
}

/// A point in the classifier's feature space.
pub type Feature = [f64; 2];

/// Euclidean distance in the feature space — the one metric shared by the
/// classifier's leader–follower radius and the retuner's drift threshold.
pub(crate) fn distance(a: Feature, b: Feature) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    (dx * dx + dy * dy).sqrt()
}

/// The streaming leader–follower classifier.
#[derive(Debug, Clone)]
pub struct OnlineClassifier {
    max_phases: usize,
    distance_threshold: f64,
    decay: f64,
    centroids: Vec<Feature>,
    counts: Vec<u64>,
}

impl OnlineClassifier {
    /// Creates an empty classifier.
    ///
    /// `max_phases` bounds the phase table; `distance_threshold` is the
    /// leader–follower radius (a point farther than this from every centroid
    /// founds a new phase while the table has room); `decay` is the
    /// exponential-decay step of the centroid update
    /// (`c ← (1 − decay)·c + decay·x`).
    ///
    /// # Panics
    ///
    /// Panics if `max_phases` is zero, `distance_threshold` is negative or
    /// non-finite, or `decay` is outside `(0, 1]`.
    pub fn new(max_phases: usize, distance_threshold: f64, decay: f64) -> Self {
        assert!(max_phases > 0, "the phase table needs at least one slot");
        assert!(
            distance_threshold.is_finite() && distance_threshold >= 0.0,
            "distance threshold must be a non-negative number"
        );
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be within (0, 1], got {decay}"
        );
        Self {
            max_phases,
            distance_threshold,
            decay,
            centroids: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Classifies one interval's feature point, updating the matched phase's
    /// centroid, and returns the phase it was assigned to.
    pub fn observe(&mut self, feature: Feature) -> PhaseId {
        let nearest = self
            .centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| distance(feature, **a).total_cmp(&distance(feature, **b)))
            .map(|(index, centroid)| (index, distance(feature, *centroid)));
        match nearest {
            // Far from everything and the table has room: a new phase.
            Some((_, gap))
                if gap > self.distance_threshold && self.centroids.len() < self.max_phases =>
            {
                self.found(feature)
            }
            // Close enough (or the table is full): follow the leader.
            Some((index, _)) => {
                let c = &mut self.centroids[index];
                c[0] += self.decay * (feature[0] - c[0]);
                c[1] += self.decay * (feature[1] - c[1]);
                self.counts[index] += 1;
                PhaseId(index as u32)
            }
            // The very first observation founds the first phase.
            None => self.found(feature),
        }
    }

    /// Classifies a batch of points in order; equivalent to calling
    /// [`OnlineClassifier::observe`] on each point individually.
    pub fn observe_batch(&mut self, features: &[Feature]) -> Vec<PhaseId> {
        features.iter().map(|f| self.observe(*f)).collect()
    }

    fn found(&mut self, feature: Feature) -> PhaseId {
        let id = PhaseId(self.centroids.len() as u32);
        self.centroids.push(feature);
        self.counts.push(1);
        id
    }

    /// Number of phases detected so far.
    pub fn phase_count(&self) -> usize {
        self.centroids.len()
    }

    /// The current centroid of a phase, if it exists.
    pub fn centroid(&self, phase: PhaseId) -> Option<Feature> {
        self.centroids.get(phase.index()).copied()
    }

    /// Number of observations assigned to a phase so far.
    pub fn observations(&self, phase: PhaseId) -> u64 {
        self.counts.get(phase.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_founds_phase_zero() {
        let mut c = OnlineClassifier::new(4, 0.1, 0.3);
        assert_eq!(c.observe([0.5, 0.2]), PhaseId(0));
        assert_eq!(c.phase_count(), 1);
        assert_eq!(c.observations(PhaseId(0)), 1);
        assert_eq!(c.centroid(PhaseId(0)), Some([0.5, 0.2]));
    }

    #[test]
    fn nearby_points_join_the_same_phase() {
        let mut c = OnlineClassifier::new(4, 0.2, 0.5);
        let a = c.observe([0.5, 0.2]);
        let b = c.observe([0.55, 0.22]);
        assert_eq!(a, b);
        assert_eq!(c.phase_count(), 1);
        assert_eq!(c.observations(a), 2);
    }

    #[test]
    fn distant_points_found_new_phases_until_the_table_is_full() {
        let mut c = OnlineClassifier::new(2, 0.1, 0.3);
        let a = c.observe([0.0, 0.0]);
        let b = c.observe([1.0, 1.0]);
        assert_ne!(a, b);
        assert_eq!(c.phase_count(), 2);
        // Table full: a third distinct behaviour joins its nearest phase.
        let d = c.observe([2.0, 2.0]);
        assert_eq!(d, b);
        assert_eq!(c.phase_count(), 2);
    }

    #[test]
    fn centroids_decay_toward_recent_behaviour() {
        let mut c = OnlineClassifier::new(2, 10.0, 0.5);
        c.observe([0.0, 0.0]);
        c.observe([1.0, 0.0]);
        let centroid = c.centroid(PhaseId(0)).unwrap();
        assert!((centroid[0] - 0.5).abs() < 1e-12);
        c.observe([1.0, 0.0]);
        let centroid = c.centroid(PhaseId(0)).unwrap();
        assert!(
            (centroid[0] - 0.75).abs() < 1e-12,
            "drifts toward the drift"
        );
    }

    #[test]
    fn batch_and_single_observation_agree() {
        let stream = [
            [0.1, 0.0],
            [0.9, 0.6],
            [0.12, 0.02],
            [0.88, 0.61],
            [0.5, 0.3],
        ];
        let mut one = OnlineClassifier::new(3, 0.25, 0.3);
        let singly: Vec<PhaseId> = stream.iter().map(|f| one.observe(*f)).collect();
        let mut two = OnlineClassifier::new(3, 0.25, 0.3);
        let (head, tail) = stream.split_at(2);
        let mut batched = two.observe_batch(head);
        batched.extend(two.observe_batch(tail));
        assert_eq!(singly, batched);
        assert_eq!(one.centroid(PhaseId(0)), two.centroid(PhaseId(0)));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_phase_table_is_rejected() {
        let _ = OnlineClassifier::new(0, 0.1, 0.3);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn decay_outside_unit_interval_is_rejected() {
        let _ = OnlineClassifier::new(2, 0.1, 1.5);
    }
}
