//! The adaptive retuner: per-phase IPC sampling, Algorithm 2 decisions, and
//! drift-triggered re-evaluation.
//!
//! Once the classifier names an interval's phase, the retuner accumulates the
//! interval's IPC under that phase's entry for the core kind it ran on. When
//! every kind has enough samples, the phase's per-kind IPCs go through the
//! paper's Algorithm 2 ([`phase_runtime::select_core_kind`]) exactly as the
//! static tuner's monitored sections would — the two tuners share the same
//! decision procedure and differ only in where the observations come from.
//!
//! Unlike the static tuner's monitor-once behaviour, a decision here is not
//! final: the centroid the classifier maintains for the phase keeps moving
//! with the program, and when it drifts farther than a threshold from where
//! it was at decision time, the assignment is dropped, the samples cleared,
//! and the phase re-measured — the "adaptive" half of the subsystem.

use std::sync::Arc;

use phase_amp::{CoreKind, MachineSpec};
use phase_runtime::{select_core_kind, ObservedIpc};

use crate::classifier::{distance, Feature, PhaseId};
use crate::OnlineConfig;

#[derive(Debug, Clone, Copy, Default)]
struct KindSamples {
    instructions: u64,
    cycles: f64,
    intervals: u32,
}

impl KindSamples {
    fn record(&mut self, instructions: u64, cycles: f64) {
        self.instructions += instructions;
        self.cycles += cycles;
        self.intervals += 1;
    }

    fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }
}

#[derive(Debug, Clone)]
struct PhaseTuning {
    /// Per-core-kind accumulators, indexed by kind id.
    kind_samples: Vec<KindSamples>,
    /// The decided core kind, once Algorithm 2 has run.
    assignment: Option<CoreKind>,
    /// Where the phase's centroid was when the assignment was decided.
    centroid_at_decision: Feature,
}

impl PhaseTuning {
    fn new(kind_count: usize) -> Self {
        Self {
            kind_samples: vec![KindSamples::default(); kind_count],
            assignment: None,
            centroid_at_decision: [0.0, 0.0],
        }
    }
}

/// What one retuner observation did, so the tuner can fold it into its
/// aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetuneEvents {
    /// An existing assignment was dropped because the centroid drifted.
    pub retuned: bool,
    /// A (new) assignment was decided this observation.
    pub decided: bool,
}

/// Per-process adaptive retuning state over the classifier's phase table.
#[derive(Debug, Clone)]
pub struct AdaptiveRetuner {
    machine: Arc<MachineSpec>,
    config: OnlineConfig,
    phases: Vec<PhaseTuning>,
}

impl AdaptiveRetuner {
    /// Creates the retuner for one process on the given machine.
    pub fn new(machine: Arc<MachineSpec>, config: OnlineConfig) -> Self {
        Self {
            machine,
            config,
            phases: Vec::new(),
        }
    }

    fn phase_mut(&mut self, phase: PhaseId) -> &mut PhaseTuning {
        let kind_count = self.machine.kinds().len();
        while self.phases.len() <= phase.index() {
            self.phases.push(PhaseTuning::new(kind_count));
        }
        &mut self.phases[phase.index()]
    }

    /// Folds one classified interval into the phase's per-kind samples,
    /// re-evaluating a drifted assignment and deciding an undecided one when
    /// enough samples exist. Returns what happened.
    pub fn observe(
        &mut self,
        phase: PhaseId,
        centroid: Feature,
        kind: CoreKind,
        instructions: u64,
        cycles: f64,
    ) -> RetuneEvents {
        let drift_threshold = self.config.drift_threshold;
        let samples_per_kind = self.config.samples_per_kind;
        let ipc_threshold = self.config.ipc_threshold;
        let kinds = self.machine.kinds();
        let machine = Arc::clone(&self.machine);
        let entry = self.phase_mut(phase);
        let mut events = RetuneEvents::default();

        // 1. Drift re-evaluation: the phase is no longer what it was measured
        //    as; drop the stale assignment and start over with fresh samples.
        if entry.assignment.is_some() {
            let moved = distance(centroid, entry.centroid_at_decision);
            if moved > drift_threshold {
                entry.assignment = None;
                for samples in &mut entry.kind_samples {
                    *samples = KindSamples::default();
                }
                events.retuned = true;
            }
        }

        // 2. Record the interval under the kind it ran on.
        if let Some(samples) = entry.kind_samples.get_mut(kind.index()) {
            samples.record(instructions, cycles);
        }

        // 3. Decide once every kind has been sampled enough.
        if entry.assignment.is_none() {
            let enough = kinds.iter().all(|kind| {
                entry
                    .kind_samples
                    .get(kind.index())
                    .map(|samples| samples.intervals >= samples_per_kind)
                    .unwrap_or(false)
            });
            if enough {
                let observations: Vec<ObservedIpc> = kinds
                    .iter()
                    .map(|kind| ObservedIpc {
                        kind: *kind,
                        ipc: entry.kind_samples[kind.index()].ipc(),
                    })
                    .collect();
                if let Some(chosen) = select_core_kind(&machine, &observations, ipc_threshold) {
                    entry.assignment = Some(chosen);
                    entry.centroid_at_decision = centroid;
                    events.decided = true;
                }
            }
        }
        events
    }

    /// The phase's decided core kind, if any.
    pub fn assignment(&self, phase: PhaseId) -> Option<CoreKind> {
        self.phases
            .get(phase.index())
            .and_then(|entry| entry.assignment)
    }

    /// The core kind the phase still needs samples from, preferring the kind
    /// the process currently runs on; `None` once every kind is covered.
    pub fn kind_needing_samples(&self, phase: PhaseId, current: CoreKind) -> Option<CoreKind> {
        let Some(entry) = self.phases.get(phase.index()) else {
            // A phase never observed needs samples from everywhere; start
            // where the process already is.
            return Some(current);
        };
        let needs = |kind: CoreKind| {
            entry
                .kind_samples
                .get(kind.index())
                .map(|samples| samples.intervals < self.config.samples_per_kind)
                .unwrap_or(true)
        };
        if needs(current) {
            return Some(current);
        }
        self.machine.kinds().into_iter().find(|kind| needs(*kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Arc<MachineSpec> {
        Arc::new(MachineSpec::core2_quad_amp())
    }

    fn config() -> OnlineConfig {
        OnlineConfig {
            samples_per_kind: 1,
            ipc_threshold: 0.2,
            drift_threshold: 0.1,
            ..OnlineConfig::default()
        }
    }

    const FAST: CoreKind = CoreKind(0);
    const SLOW: CoreKind = CoreKind(1);

    #[test]
    fn memory_bound_phase_is_assigned_to_slow_cores() {
        let mut retuner = AdaptiveRetuner::new(machine(), config());
        let phase = PhaseId(0);
        let centroid = [0.3, 0.6];
        let first = retuner.observe(phase, centroid, FAST, 3_000, 10_000.0);
        assert!(!first.decided);
        assert_eq!(retuner.kind_needing_samples(phase, FAST), Some(SLOW));
        let second = retuner.observe(phase, centroid, SLOW, 7_000, 10_000.0);
        assert!(second.decided);
        assert_eq!(retuner.assignment(phase), Some(SLOW));
        assert_eq!(retuner.kind_needing_samples(phase, FAST), None);
    }

    #[test]
    fn cpu_bound_phase_stays_on_fast_cores() {
        let mut retuner = AdaptiveRetuner::new(machine(), config());
        let phase = PhaseId(0);
        let centroid = [1.0, 0.05];
        retuner.observe(phase, centroid, FAST, 10_000, 10_000.0);
        retuner.observe(phase, centroid, SLOW, 10_200, 10_000.0);
        assert_eq!(retuner.assignment(phase), Some(FAST));
    }

    #[test]
    fn centroid_drift_drops_the_assignment_and_resamples() {
        let mut retuner = AdaptiveRetuner::new(machine(), config());
        let phase = PhaseId(0);
        retuner.observe(phase, [1.0, 0.0], FAST, 10_000, 10_000.0);
        let decided = retuner.observe(phase, [1.0, 0.0], SLOW, 10_100, 10_000.0);
        assert!(decided.decided);
        assert_eq!(retuner.assignment(phase), Some(FAST));

        // The phase's behaviour rotates toward memory-bound: its centroid
        // moves past the drift threshold. The stale assignment is dropped and
        // fresh samples (now showing a big slow-core IPC gain) flip it.
        let drifted = [0.35, 0.5];
        let events = retuner.observe(phase, drifted, FAST, 3_000, 10_000.0);
        assert!(events.retuned);
        assert_eq!(retuner.assignment(phase), None);
        let redecided = retuner.observe(phase, drifted, SLOW, 7_000, 10_000.0);
        assert!(redecided.decided);
        assert_eq!(retuner.assignment(phase), Some(SLOW));
    }

    #[test]
    fn phases_are_independent() {
        let mut retuner = AdaptiveRetuner::new(machine(), config());
        retuner.observe(PhaseId(0), [1.0, 0.0], FAST, 10_000, 10_000.0);
        retuner.observe(PhaseId(0), [1.0, 0.0], SLOW, 10_100, 10_000.0);
        assert_eq!(retuner.assignment(PhaseId(0)), Some(FAST));
        assert_eq!(retuner.assignment(PhaseId(1)), None);
        assert_eq!(retuner.kind_needing_samples(PhaseId(1), SLOW), Some(SLOW));
    }
}
