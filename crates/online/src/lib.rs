//! # phase-online
//!
//! Online phase detection and adaptive retuning — tuning *without* static
//! marks.
//!
//! The paper's Section II notes the alternative to its static phase marks:
//! detect phases dynamically from hardware counters at run time (the road
//! taken by Jooya & Analoui's interval classification and by Saez et al.'s
//! live-counter OpenMP placement). This crate is that path for the
//! reproduction: it consumes the periodic [`IntervalObservation`] stream the
//! `phase-sched` engines emit when `SimConfig::sample_interval_ns` is set,
//! and needs nothing from the static pipeline — no typing, no marks, no
//! instrumented binaries.
//!
//! Three pieces:
//!
//! * [`OnlineClassifier`] — a streaming leader–follower / online-k-means
//!   classifier over per-interval `{ipc, mem_ratio}` feature points, with a
//!   bounded phase table and exponential-decay centroids;
//! * [`AdaptiveRetuner`] — per-phase per-core-kind IPC accumulation feeding
//!   the paper's Algorithm 2 (`phase_runtime::select_core_kind`), with
//!   drift-triggered re-evaluation when a phase's centroid moves past a
//!   threshold (the case the static monitor-once tuner can never recover
//!   from);
//! * [`OnlineTuner`] — the [`PhaseHook`] + [`IntervalHook`] implementation
//!   gluing them together per process, issuing affinity masks exactly like
//!   the static tuner does at marks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod classifier;
mod retuner;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use phase_amp::{AffinityMask, MachineSpec};
use phase_sched::{IntervalHook, IntervalObservation, MarkContext, MarkResponse, PhaseHook, Pid};

pub use classifier::{Feature, OnlineClassifier, PhaseId};
pub use retuner::{AdaptiveRetuner, RetuneEvents};

/// Configuration of the online tuner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Period of the hardware-counter sampling tick, in nanoseconds; becomes
    /// `SimConfig::sample_interval_ns` for online cells.
    pub sample_interval_ns: f64,
    /// Bound on the per-process phase table.
    pub max_phases: usize,
    /// Leader–follower radius in feature space: an interval farther than this
    /// from every known phase founds a new one (while the table has room).
    pub distance_threshold: f64,
    /// Exponential-decay step of the centroid update, in `(0, 1]`.
    pub decay: f64,
    /// Weight of the IPC coordinate in the feature vector. IPC depends on the
    /// core kind the interval ran on, so it is weighted low relative to the
    /// kind-invariant memory ratio.
    pub ipc_weight: f64,
    /// Weight of the memory-ratio coordinate in the feature vector.
    pub mem_weight: f64,
    /// Intervals with fewer instructions are discarded as unrepresentative.
    pub min_interval_instructions: u64,
    /// Sampled intervals required per `(phase, core kind)` pair before the
    /// assignment decision is made.
    pub samples_per_kind: u32,
    /// Algorithm 2's IPC-difference threshold `δ` (shared with the static
    /// tuner's `TunerConfig::ipc_threshold`).
    pub ipc_threshold: f64,
    /// How far a phase's centroid may move from where it was at decision time
    /// before the assignment is dropped and the phase re-measured.
    pub drift_threshold: f64,
    /// Whether phases preferring the fastest kind are pinned to it (the same
    /// ablation knob as `TunerConfig::pin_preferred_fast`; the default leaves
    /// them on all cores so no kind starves).
    pub pin_preferred_fast: bool,
    /// Contention cap: how many processes may be pinned to one core kind at a
    /// time. Zero (the default) means "one per core of that kind"; an
    /// explicit value overrides it. Pins beyond the cap degrade to all-cores
    /// so no kind is ever oversubscribed by the tuner itself.
    pub pin_cap_per_kind: u32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            sample_interval_ns: 200_000.0, // one tick per 10 default quanta
            max_phases: 8,
            distance_threshold: 0.12,
            decay: 0.3,
            ipc_weight: 0.25,
            mem_weight: 3.0,
            min_interval_instructions: 50,
            samples_per_kind: 1,
            ipc_threshold: 0.2,
            drift_threshold: 0.1,
            pin_preferred_fast: false,
            pin_cap_per_kind: 0,
        }
    }
}

impl OnlineConfig {
    /// The configuration with a different sampling interval.
    pub fn with_interval_ns(mut self, sample_interval_ns: f64) -> Self {
        self.sample_interval_ns = sample_interval_ns;
        self
    }

    /// The configuration with a different phase-table bound.
    pub fn with_max_phases(mut self, max_phases: usize) -> Self {
        self.max_phases = max_phases;
        self
    }
}

/// Aggregate statistics about what the online tuner did, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    /// Interval observations accepted (after the minimum-size filter).
    pub intervals_observed: u64,
    /// Phases founded across all processes.
    pub phases_created: u64,
    /// Assignment decisions made (including re-decisions after drift).
    pub assignments_decided: u64,
    /// Assignments dropped because a phase's centroid drifted.
    pub retunes: u64,
    /// Affinity-mask changes issued to the scheduler.
    pub switch_requests: u64,
}

/// Per-process online-tuning state.
struct ProcessOnline {
    classifier: OnlineClassifier,
    retuner: AdaptiveRetuner,
    /// The last mask issued for the process, so unchanged decisions stay
    /// silent instead of re-issuing the same affinity every tick.
    last_mask: Option<AffinityMask>,
    /// The kind the process is currently pinned to (counted against the
    /// per-kind contention cap), if any.
    pinned_kind: Option<phase_amp::CoreKind>,
}

struct TunerInner {
    machine: Arc<MachineSpec>,
    config: OnlineConfig,
    processes: HashMap<Pid, ProcessOnline>,
    /// Processes currently pinned to each kind, indexed by kind id: the
    /// contention cap's bookkeeping.
    pinned: [u32; 8],
    stats: OnlineStats,
}

/// The online phase tuner, shared between the simulation (as its hook) and
/// the experiment harness (for statistics).
///
/// Cloning the tuner clones a handle to the same shared state, mirroring
/// `phase_runtime::PhaseTuner`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use phase_amp::MachineSpec;
/// use phase_online::{OnlineConfig, OnlineTuner};
///
/// let machine = Arc::new(MachineSpec::core2_quad_amp());
/// let tuner = OnlineTuner::new(Arc::clone(&machine), OnlineConfig::default());
/// let handle = tuner.clone();
/// assert_eq!(handle.stats().intervals_observed, 0);
/// ```
#[derive(Clone)]
pub struct OnlineTuner {
    inner: Arc<Mutex<TunerInner>>,
}

impl OnlineTuner {
    /// Creates an online tuner for the given machine.
    pub fn new(machine: Arc<MachineSpec>, config: OnlineConfig) -> Self {
        Self {
            inner: Arc::new(Mutex::new(TunerInner {
                machine,
                config,
                processes: HashMap::new(),
                pinned: [0; 8],
                stats: OnlineStats::default(),
            })),
        }
    }

    /// A snapshot of the tuner's aggregate statistics.
    pub fn stats(&self) -> OnlineStats {
        self.inner.lock().stats
    }

    /// The assignment decided for a phase of a process, if any.
    pub fn assignment(&self, pid: Pid, phase: PhaseId) -> Option<phase_amp::CoreKind> {
        self.inner
            .lock()
            .processes
            .get(&pid)
            .and_then(|state| state.retuner.assignment(phase))
    }

    /// Number of phases detected for a process so far.
    pub fn phase_count(&self, pid: Pid) -> usize {
        self.inner
            .lock()
            .processes
            .get(&pid)
            .map(|state| state.classifier.phase_count())
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for OnlineTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("OnlineTuner")
            .field("config", &inner.config)
            .field("stats", &inner.stats)
            .field("processes", &inner.processes.len())
            .finish()
    }
}

impl PhaseHook for OnlineTuner {
    fn on_phase_mark(&mut self, _ctx: &MarkContext<'_>) -> MarkResponse {
        // The online tuner is built for binaries without marks; if a marked
        // binary runs under it anyway, marks are inert.
        MarkResponse::none()
    }

    fn on_process_exit(&mut self, pid: Pid) {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.processes.remove(&pid) {
            if let Some(kind) = state.pinned_kind {
                inner.pinned[kind.index()] = inner.pinned[kind.index()].saturating_sub(1);
            }
        }
    }
}

impl IntervalHook for OnlineTuner {
    fn on_sample_interval(&mut self, observation: &IntervalObservation) -> Option<AffinityMask> {
        let mut inner = self.inner.lock();
        let TunerInner {
            machine,
            config,
            processes,
            pinned,
            stats,
        } = &mut *inner;
        if observation.instructions < config.min_interval_instructions {
            return None;
        }
        let fastest = machine.fastest_kind();
        let state = processes
            .entry(observation.pid)
            .or_insert_with(|| ProcessOnline {
                classifier: OnlineClassifier::new(
                    config.max_phases,
                    config.distance_threshold,
                    config.decay,
                ),
                retuner: AdaptiveRetuner::new(Arc::clone(machine), *config),
                last_mask: None,
                pinned_kind: None,
            });

        // 1. Classify the interval.
        stats.intervals_observed += 1;
        let feature = [
            observation.ipc() * config.ipc_weight,
            observation.mem_ratio() * config.mem_weight,
        ];
        let before = state.classifier.phase_count();
        let phase = state.classifier.observe(feature);
        stats.phases_created += (state.classifier.phase_count() - before) as u64;
        let centroid = state
            .classifier
            .centroid(phase)
            .expect("observed phase exists");

        // 2. Feed the retuner; it decides or re-evaluates the assignment.
        let events = state.retuner.observe(
            phase,
            centroid,
            observation.core_kind,
            observation.instructions,
            observation.cycles,
        );
        stats.retunes += u64::from(events.retuned);
        stats.assignments_decided += u64::from(events.decided);

        // 3. The placement the phase should have now: the decided kind, or —
        //    while undecided — a pin to the *other* kind still needing
        //    samples so the next interval measures there. When the kind we
        //    need next is the one the process already runs on, it is left
        //    alone: restricting an undecided process would only take freedom
        //    from the scheduler.
        let wanted_kind = match state.retuner.assignment(phase) {
            Some(kind) if kind == fastest && !config.pin_preferred_fast => None,
            Some(kind) => Some(kind),
            None => match state
                .retuner
                .kind_needing_samples(phase, observation.core_kind)
            {
                Some(kind) if kind != observation.core_kind => Some(kind),
                _ => None,
            },
        };

        // 4. Contention cap: a kind only absorbs as many *pinned* processes
        //    as it has cores. Pinning more would idle the other kinds while
        //    this one queues up — the oversubscription failure mode of naive
        //    phase-chasing. Processes over the cap stay on all cores and keep
        //    the machine busy; their phase simply is not accelerated yet.
        let wanted_kind = wanted_kind.filter(|kind| {
            let cap = if config.pin_cap_per_kind > 0 {
                config.pin_cap_per_kind
            } else {
                machine.cores_of_kind(*kind).len() as u32
            };
            state.pinned_kind == Some(*kind) || pinned[kind.index()] < cap
        });

        // 5. Book-keep the pin transition and answer only on change.
        if state.pinned_kind != wanted_kind {
            if let Some(old) = state.pinned_kind {
                pinned[old.index()] = pinned[old.index()].saturating_sub(1);
            }
            if let Some(new) = wanted_kind {
                pinned[new.index()] += 1;
            }
            state.pinned_kind = wanted_kind;
        }
        let mask = match wanted_kind {
            Some(kind) => AffinityMask::kind(machine, kind),
            None => AffinityMask::all_cores(machine),
        };
        if state.last_mask == Some(mask) {
            None
        } else {
            state.last_mask = Some(mask);
            stats.switch_requests += 1;
            Some(mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_amp::CoreKind;

    fn machine() -> Arc<MachineSpec> {
        Arc::new(MachineSpec::core2_quad_amp())
    }

    fn observation(
        pid: u32,
        seq: u64,
        kind: CoreKind,
        ipc: f64,
        mem_ratio: f64,
    ) -> IntervalObservation {
        let instructions = 10_000;
        IntervalObservation {
            pid: Pid(pid),
            seq,
            instructions,
            cycles: instructions as f64 / ipc,
            mem_accesses: (instructions as f64 * mem_ratio) as u64,
            core_kind: kind,
            now_ns: seq as f64 * 200_000.0,
        }
    }

    #[test]
    fn memory_bound_stream_is_routed_to_slow_cores() {
        let machine = machine();
        let mut tuner = OnlineTuner::new(Arc::clone(&machine), OnlineConfig::default());
        // First interval on a fast core: undecided, pinned to the fast kind
        // until its sample count is met... already met (samples_per_kind=1),
        // so the pin moves to the slow kind for the missing sample.
        let first = tuner.on_sample_interval(&observation(1, 0, CoreKind(0), 0.3, 0.25));
        assert_eq!(first, Some(AffinityMask::kind(&machine, CoreKind(1))));
        // Second interval runs on the slow kind with a big IPC gain: decided.
        let second = tuner.on_sample_interval(&observation(1, 1, CoreKind(1), 0.7, 0.25));
        assert_eq!(second, None, "pin to slow cores is already in place");
        assert_eq!(tuner.assignment(Pid(1), PhaseId(0)), Some(CoreKind(1)));
        let stats = tuner.stats();
        assert_eq!(stats.intervals_observed, 2);
        assert_eq!(stats.assignments_decided, 1);
        assert_eq!(stats.phases_created, 1);
    }

    #[test]
    fn cpu_bound_stream_is_released_to_all_cores() {
        let machine = machine();
        let mut tuner = OnlineTuner::new(Arc::clone(&machine), OnlineConfig::default());
        tuner.on_sample_interval(&observation(1, 0, CoreKind(0), 1.0, 0.02));
        let response = tuner.on_sample_interval(&observation(1, 1, CoreKind(1), 1.02, 0.02));
        assert_eq!(response, Some(AffinityMask::all_cores(&machine)));
        assert_eq!(tuner.assignment(Pid(1), PhaseId(0)), Some(CoreKind(0)));
    }

    #[test]
    fn distinct_behaviours_become_distinct_phases() {
        let machine = machine();
        let mut tuner = OnlineTuner::new(Arc::clone(&machine), OnlineConfig::default());
        tuner.on_sample_interval(&observation(1, 0, CoreKind(0), 1.1, 0.02));
        tuner.on_sample_interval(&observation(1, 1, CoreKind(0), 0.3, 0.28));
        assert_eq!(tuner.phase_count(Pid(1)), 2);
    }

    #[test]
    fn drifting_phase_is_retuned() {
        let machine = machine();
        let config = OnlineConfig {
            // A wide radius keeps the drifting stream in ONE phase, so the
            // retune must come from centroid drift, not from a new phase.
            distance_threshold: 2.0,
            decay: 0.5,
            ..OnlineConfig::default()
        };
        let mut tuner = OnlineTuner::new(Arc::clone(&machine), config);
        // Decide the phase as CPU-bound on both kinds.
        tuner.on_sample_interval(&observation(1, 0, CoreKind(0), 1.0, 0.02));
        tuner.on_sample_interval(&observation(1, 1, CoreKind(1), 1.0, 0.02));
        assert_eq!(tuner.assignment(Pid(1), PhaseId(0)), Some(CoreKind(0)));
        // The program rotates to memory-bound behaviour: the centroid drags
        // past the drift threshold, the assignment drops, and fresh samples
        // flip it to the slow cores.
        for seq in 2..8 {
            let kind = if seq % 2 == 0 {
                CoreKind(0)
            } else {
                CoreKind(1)
            };
            let ipc = if kind == CoreKind(1) { 0.7 } else { 0.3 };
            tuner.on_sample_interval(&observation(1, seq, kind, ipc, 0.3));
        }
        let stats = tuner.stats();
        assert!(stats.retunes >= 1, "drift must trigger a retune");
        assert!(stats.assignments_decided >= 2);
        assert_eq!(tuner.assignment(Pid(1), PhaseId(0)), Some(CoreKind(1)));
        assert_eq!(tuner.phase_count(Pid(1)), 1, "one drifting phase");
    }

    #[test]
    fn tiny_intervals_are_discarded() {
        let machine = machine();
        let mut tuner = OnlineTuner::new(Arc::clone(&machine), OnlineConfig::default());
        let mut tiny = observation(1, 0, CoreKind(0), 1.0, 0.1);
        tiny.instructions = 3;
        tiny.cycles = 3.0;
        assert_eq!(tuner.on_sample_interval(&tiny), None);
        assert_eq!(tuner.stats().intervals_observed, 0);
    }

    #[test]
    fn processes_are_independent_and_cleaned_up() {
        let machine = machine();
        let mut tuner = OnlineTuner::new(Arc::clone(&machine), OnlineConfig::default());
        tuner.on_sample_interval(&observation(1, 0, CoreKind(0), 1.0, 0.02));
        tuner.on_sample_interval(&observation(2, 0, CoreKind(0), 0.3, 0.28));
        assert_eq!(tuner.phase_count(Pid(1)), 1);
        assert_eq!(tuner.phase_count(Pid(2)), 1);
        tuner.on_process_exit(Pid(1));
        assert_eq!(tuner.phase_count(Pid(1)), 0);
        assert_eq!(tuner.phase_count(Pid(2)), 1);
    }
}
