//! The per-block cycle-cost model of the asymmetric machine.
//!
//! The model captures the single property phase-based tuning exploits: on a
//! performance-asymmetric machine, "cores with a higher clock frequency can
//! efficiently process arithmetic instructions whereas cores with a lower
//! frequency will waste fewer cycles during stalls (e.g. cache miss)"
//! (Section II-B). Arithmetic latencies are charged in core cycles (the same
//! on every core, so a faster clock finishes them sooner in wall-clock time),
//! while main-memory latency is charged in *nanoseconds* and converted to
//! cycles at the core's frequency — a faster core therefore burns more cycles
//! per miss, and memory-bound code sees little wall-clock benefit from it.

use phase_ir::{AccessPattern, BasicBlock, InstrClass, MemRef};
use serde::{Deserialize, Serialize};

use crate::spec::{CoreId, MachineSpec};

/// Base execution cost of an instruction class in core cycles (effective
/// reciprocal throughput on a superscalar core), excluding any
/// memory-hierarchy time for loads and stores.
///
/// The values are calibrated so that compute-bound code reaches an IPC in the
/// 1.5–3 range and memory-bound code drops well below 1 — the same scale the
/// paper's hardware counters report, which matters because Algorithm 2's
/// threshold `δ` is an *absolute* IPC difference.
pub fn base_latency_cycles(class: InstrClass) -> f64 {
    match class {
        InstrClass::IntAlu => 0.35,
        InstrClass::IntMul => 1.0,
        InstrClass::IntDiv => 8.0,
        InstrClass::FpAdd => 0.5,
        InstrClass::FpMul => 0.7,
        InstrClass::FpDiv => 8.0,
        InstrClass::Load => 0.35,
        InstrClass::Store => 0.35,
        InstrClass::Branch => 0.5,
        InstrClass::Jump => 0.35,
        InstrClass::Call => 1.0,
        InstrClass::Return => 1.0,
        InstrClass::Nop => 0.2,
        InstrClass::Syscall => 100.0,
    }
}

/// How many outstanding misses overlap for patterns with memory-level
/// parallelism; pointer chasing gets almost no overlap.
const MISS_OVERLAP_FACTOR: f64 = 4.0;
const CHASE_OVERLAP_FACTOR: f64 = 1.5;

/// Probability that an access with the given reuse distance misses a cache of
/// the given capacity (smooth logistic transition around capacity).
pub fn miss_probability(reuse_distance_bytes: f64, cache_capacity_bytes: f64) -> f64 {
    if reuse_distance_bytes <= 0.0 {
        return 0.0;
    }
    let ratio = reuse_distance_bytes / cache_capacity_bytes.max(1.0);
    let x = ratio.ln() / std::f64::consts::LN_10;
    1.0 / (1.0 + (-4.0 * x).exp())
}

/// The cycle/time cost of executing one basic block once on one core.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockCost {
    /// Instructions retired (terminator included).
    pub instructions: u64,
    /// Core cycles spent.
    pub cycles: f64,
    /// Wall-clock nanoseconds spent (`cycles / freq_ghz`).
    pub nanos: f64,
    /// Expected number of accesses served by the L1.
    pub l1_hits: f64,
    /// Expected number of accesses served by the shared L2.
    pub l2_hits: f64,
    /// Expected number of accesses served by main memory.
    pub memory_accesses: f64,
}

impl BlockCost {
    /// Instructions per cycle achieved for this block on this core — the
    /// metric the paper's dynamic analysis monitors with hardware counters.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Accumulates another cost into this one.
    pub fn accumulate(&mut self, other: &BlockCost) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.nanos += other.nanos;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.memory_accesses += other.memory_accesses;
    }
}

/// Context the cost model needs about the rest of the machine at the moment a
/// block executes: how contended the core's shared L2 currently is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingContext {
    /// Number of processes actively using the core's L2 (at least 1: the
    /// process itself).
    pub l2_sharers: usize,
}

impl Default for SharingContext {
    fn default() -> Self {
        Self { l2_sharers: 1 }
    }
}

impl SharingContext {
    /// Context for a process running alone on its cache group.
    pub fn exclusive() -> Self {
        Self::default()
    }

    /// Context with the given number of sharers (clamped to at least one).
    pub fn shared_by(sharers: usize) -> Self {
        Self {
            l2_sharers: sharers.max(1),
        }
    }
}

/// The machine cost model: computes per-block costs for any core of a
/// [`MachineSpec`].
///
/// # Examples
///
/// ```
/// use phase_amp::{CostModel, MachineSpec, SharingContext, CoreId};
/// use phase_ir::{BasicBlock, BlockId, Instruction, Terminator};
///
/// let spec = MachineSpec::core2_quad_amp();
/// let model = CostModel::new(spec);
/// let block = BasicBlock::new(
///     BlockId(0),
///     vec![Instruction::fp_mul(); 64],
///     Terminator::Return,
/// );
/// let fast = model.block_cost(CoreId(0), &block, SharingContext::exclusive());
/// let slow = model.block_cost(CoreId(2), &block, SharingContext::exclusive());
/// // CPU-bound code takes the same cycles everywhere but less wall-clock
/// // time on the fast core.
/// assert!((fast.cycles - slow.cycles).abs() < 1e-9);
/// assert!(fast.nanos < slow.nanos);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    spec: MachineSpec,
}

impl CostModel {
    /// Creates a cost model for the given machine.
    pub fn new(spec: MachineSpec) -> Self {
        Self { spec }
    }

    /// The underlying machine specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Cost of one execution of `block` on `core` under the given sharing
    /// conditions.
    ///
    /// # Panics
    ///
    /// Panics if `core` does not exist in the machine.
    pub fn block_cost(&self, core: CoreId, block: &BasicBlock, ctx: SharingContext) -> BlockCost {
        let core_spec = self.spec.core(core);
        let freq = core_spec.freq_ghz;

        let mut cycles = 0.0;
        let mut l1_hits = 0.0;
        let mut l2_hits = 0.0;
        let mut memory_accesses = 0.0;

        for instr in block.instructions() {
            cycles += base_latency_cycles(instr.class());
            if let Some(mem) = instr.mem_ref() {
                let access = self.memory_access_cost(freq, mem, ctx);
                cycles += access.cycles;
                l1_hits += access.l1_hit_probability;
                l2_hits += access.l2_hit_probability;
                memory_accesses += access.memory_probability;
            }
        }
        cycles += terminator_cycles(block);

        let instructions = block.instruction_count() as u64;
        BlockCost {
            instructions,
            cycles,
            nanos: cycles / freq,
            l1_hits,
            l2_hits,
            memory_accesses,
        }
    }

    /// Cost in cycles of a core switch charged on the destination core, plus
    /// the wall-clock time it takes there.
    pub fn core_switch_cost(&self, destination: CoreId) -> (u64, f64) {
        let cycles = self.spec.core_switch_cycles;
        let freq = self.spec.core(destination).freq_ghz;
        (cycles, cycles as f64 / freq)
    }

    fn memory_access_cost(
        &self,
        freq_ghz: f64,
        mem: &MemRef,
        ctx: SharingContext,
    ) -> MemAccessCost {
        let reuse = mem.estimated_reuse_distance();
        let spatial = mem.pattern.spatial_miss_factor();
        let l1_miss = spatial * miss_probability(reuse, self.spec.l1.capacity_bytes as f64);
        let effective_l2 = self.spec.l2.capacity_bytes as f64 / ctx.l2_sharers.max(1) as f64;
        let l2_miss = miss_probability(reuse, effective_l2);

        let l1_hit_probability = 1.0 - l1_miss;
        let l2_hit_probability = l1_miss * (1.0 - l2_miss);
        let memory_probability = l1_miss * l2_miss;

        // Main-memory latency is fixed in nanoseconds, so it costs more
        // cycles on a faster core.
        let memory_cycles = self.spec.memory_latency_ns * freq_ghz;
        let overlap = if mem.pattern.overlaps_misses() {
            MISS_OVERLAP_FACTOR
        } else {
            CHASE_OVERLAP_FACTOR
        };

        let cycles = l1_hit_probability * self.spec.l1.latency_cycles
            + l2_hit_probability * self.spec.l2.latency_cycles
            + memory_probability * memory_cycles / overlap;
        MemAccessCost {
            cycles,
            l1_hit_probability,
            l2_hit_probability,
            memory_probability,
        }
    }
}

struct MemAccessCost {
    cycles: f64,
    l1_hit_probability: f64,
    l2_hit_probability: f64,
    memory_probability: f64,
}

fn terminator_cycles(block: &BasicBlock) -> f64 {
    use phase_ir::Terminator;
    match block.terminator() {
        Terminator::Jump(_) => base_latency_cycles(InstrClass::Jump),
        Terminator::Branch { .. } => base_latency_cycles(InstrClass::Branch),
        Terminator::Call { .. } => base_latency_cycles(InstrClass::Call),
        Terminator::Return => base_latency_cycles(InstrClass::Return),
        Terminator::Exit => base_latency_cycles(InstrClass::Syscall),
    }
}

/// Convenience wrapper: the access pattern's effect on cost, exposed for
/// tests and documentation of the model's assumptions.
pub fn pattern_is_latency_bound(pattern: AccessPattern) -> bool {
    !pattern.overlaps_misses()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_ir::{BlockId, Instruction, MemRef, Terminator};

    fn cpu_block(n: usize) -> BasicBlock {
        BasicBlock::new(
            BlockId(0),
            vec![Instruction::fp_mul(); n],
            Terminator::Return,
        )
    }

    fn mem_block(n: usize, region: u64) -> BasicBlock {
        let mem = MemRef::new(AccessPattern::Random, region);
        BasicBlock::new(
            BlockId(0),
            vec![Instruction::load(mem); n],
            Terminator::Return,
        )
    }

    fn model() -> CostModel {
        CostModel::new(MachineSpec::core2_quad_amp())
    }

    const FAST: CoreId = CoreId(0);
    const SLOW: CoreId = CoreId(2);

    #[test]
    fn cpu_bound_code_is_faster_on_fast_core_in_wall_clock() {
        let model = model();
        let block = cpu_block(100);
        let fast = model.block_cost(FAST, &block, SharingContext::exclusive());
        let slow = model.block_cost(SLOW, &block, SharingContext::exclusive());
        assert!(fast.nanos < slow.nanos);
        // Cycle counts (and hence IPC) are identical: no stalls.
        assert!((fast.ipc() - slow.ipc()).abs() < 1e-9);
        let speedup = slow.nanos / fast.nanos;
        assert!((speedup - 2.4 / 1.6).abs() < 1e-6, "speedup {speedup}");
    }

    #[test]
    fn memory_bound_code_has_higher_ipc_on_slow_core() {
        let model = model();
        let block = mem_block(100, 512 * 1024 * 1024);
        let fast = model.block_cost(FAST, &block, SharingContext::exclusive());
        let slow = model.block_cost(SLOW, &block, SharingContext::exclusive());
        // The fast core wastes more cycles per miss, so its IPC is lower.
        assert!(slow.ipc() > fast.ipc());
        // And its wall-clock advantage largely evaporates (far less than the
        // 1.5x frequency ratio).
        let speedup = slow.nanos / fast.nanos;
        assert!(speedup < 1.15, "memory-bound speedup {speedup}");
    }

    #[test]
    fn fast_core_ipc_gain_is_larger_for_cpu_bound_code() {
        // The property Algorithm 2 relies on: the IPC difference between core
        // kinds separates CPU-bound from memory-bound phases.
        let model = model();
        let cpu = cpu_block(100);
        let mem = mem_block(100, 512 * 1024 * 1024);
        let cpu_gap = model
            .block_cost(FAST, &cpu, SharingContext::exclusive())
            .ipc()
            - model
                .block_cost(SLOW, &cpu, SharingContext::exclusive())
                .ipc();
        let mem_gap = model
            .block_cost(FAST, &mem, SharingContext::exclusive())
            .ipc()
            - model
                .block_cost(SLOW, &mem, SharingContext::exclusive())
                .ipc();
        assert!(cpu_gap >= 0.0);
        assert!(mem_gap < cpu_gap);
    }

    #[test]
    fn cache_sharing_increases_cost_of_memory_bound_code() {
        let model = model();
        // Working set that fits a private L2 but not half of one.
        let block = mem_block(100, 3 * 1024 * 1024);
        let alone = model.block_cost(FAST, &block, SharingContext::exclusive());
        let shared = model.block_cost(FAST, &block, SharingContext::shared_by(2));
        assert!(shared.cycles > alone.cycles);
        assert!(shared.memory_accesses > alone.memory_accesses);
    }

    #[test]
    fn small_working_sets_hit_in_l1() {
        let model = model();
        let block = mem_block(100, 4 * 1024);
        let cost = model.block_cost(FAST, &block, SharingContext::exclusive());
        assert!(cost.l1_hits > 95.0, "l1 hits {:?}", cost.l1_hits);
        assert!(cost.memory_accesses < 1.0);
    }

    #[test]
    fn hit_probabilities_sum_to_access_count() {
        let model = model();
        let block = mem_block(40, 8 * 1024 * 1024);
        let cost = model.block_cost(FAST, &block, SharingContext::exclusive());
        let total = cost.l1_hits + cost.l2_hits + cost.memory_accesses;
        assert!((total - 40.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn core_switch_cost_uses_destination_frequency() {
        let model = model();
        let (cycles_fast, nanos_fast) = model.core_switch_cost(FAST);
        let (cycles_slow, nanos_slow) = model.core_switch_cost(SLOW);
        assert_eq!(cycles_fast, 1000);
        assert_eq!(cycles_fast, cycles_slow);
        assert!(nanos_fast < nanos_slow);
    }

    #[test]
    fn ipc_of_empty_cost_is_zero() {
        assert_eq!(BlockCost::default().ipc(), 0.0);
    }

    #[test]
    fn accumulate_adds_all_fields() {
        let model = model();
        let block = cpu_block(10);
        let single = model.block_cost(FAST, &block, SharingContext::exclusive());
        let mut acc = BlockCost::default();
        acc.accumulate(&single);
        acc.accumulate(&single);
        assert_eq!(acc.instructions, 2 * single.instructions);
        assert!((acc.cycles - 2.0 * single.cycles).abs() < 1e-9);
    }

    #[test]
    fn pointer_chasing_is_latency_bound() {
        assert!(pattern_is_latency_bound(AccessPattern::PointerChase));
        assert!(!pattern_is_latency_bound(AccessPattern::Sequential));
        let model = model();
        let chase = BasicBlock::new(
            BlockId(0),
            vec![
                Instruction::load(MemRef::new(AccessPattern::PointerChase, 512 * 1024 * 1024));
                50
            ],
            Terminator::Return,
        );
        let rand = mem_block(50, 512 * 1024 * 1024);
        let chase_cost = model.block_cost(FAST, &chase, SharingContext::exclusive());
        let rand_cost = model.block_cost(FAST, &rand, SharingContext::exclusive());
        assert!(chase_cost.cycles > rand_cost.cycles);
    }

    #[test]
    fn base_latencies_are_positive() {
        for class in InstrClass::ALL {
            assert!(base_latency_cycles(class) > 0.0);
        }
    }
}
