//! Hardware-performance-counter emulation.
//!
//! The paper monitors instructions retired and cycles through PAPI and notes
//! that "to deal with limitations that may be imposed by the number of
//! counters or APIs, we require programs to wait for access to the counters"
//! (Section III). [`CounterBank`] models a machine-wide pool of counter slots
//! with that waiting behaviour, and [`PerfCounter`] accumulates the two events
//! the tuner needs to compute IPC.

use serde::{Deserialize, Serialize};

/// An instructions-retired / cycles counter pair, enough to compute IPC.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerfCounter {
    /// Instructions retired while the counter was armed.
    pub instructions: u64,
    /// Core cycles elapsed while the counter was armed.
    pub cycles: f64,
}

impl PerfCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the retirement of `instructions` over `cycles` core cycles.
    pub fn record(&mut self, instructions: u64, cycles: f64) {
        self.instructions += instructions;
        self.cycles += cycles;
    }

    /// Instructions per cycle observed so far (zero before anything was
    /// recorded).
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.instructions == 0 && self.cycles == 0.0
    }
}

/// Token proving a counter slot is held; release it with
/// [`CounterBank::release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterSlot(usize);

/// A machine-wide pool of hardware counter slots.
///
/// Real hardware exposes a small number of programmable counters per core;
/// the paper serialises monitoring requests when they exceed that number.
/// `CounterBank` mirrors this: [`CounterBank::try_acquire`] either hands out a
/// slot or records that a process had to wait.
///
/// # Examples
///
/// ```
/// use phase_amp::CounterBank;
///
/// let mut bank = CounterBank::new(2);
/// let a = bank.try_acquire().unwrap();
/// let _b = bank.try_acquire().unwrap();
/// assert!(bank.try_acquire().is_none());
/// assert_eq!(bank.wait_events(), 1);
/// bank.release(a);
/// assert!(bank.try_acquire().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBank {
    slots: Vec<bool>,
    wait_events: u64,
    total_acquisitions: u64,
}

impl CounterBank {
    /// Creates a bank with the given number of slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a counter bank needs at least one slot");
        Self {
            slots: vec![false; slots],
            wait_events: 0,
            total_acquisitions: 0,
        }
    }

    /// Total number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently held.
    pub fn slots_in_use(&self) -> usize {
        self.slots.iter().filter(|s| **s).count()
    }

    /// Attempts to acquire a slot; on failure the wait counter is bumped and
    /// `None` is returned (the caller retries later, as the paper's programs
    /// do).
    pub fn try_acquire(&mut self) -> Option<CounterSlot> {
        match self.slots.iter().position(|s| !*s) {
            Some(idx) => {
                self.slots[idx] = true;
                self.total_acquisitions += 1;
                Some(CounterSlot(idx))
            }
            None => {
                self.wait_events += 1;
                None
            }
        }
    }

    /// Releases a previously acquired slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not currently held (a double release).
    pub fn release(&mut self, slot: CounterSlot) {
        assert!(self.slots[slot.0], "slot {} released twice", slot.0);
        self.slots[slot.0] = false;
    }

    /// Number of times an acquisition had to wait because all slots were
    /// busy.
    pub fn wait_events(&self) -> u64 {
        self.wait_events
    }

    /// Number of successful acquisitions.
    pub fn total_acquisitions(&self) -> u64 {
        self.total_acquisitions
    }

    /// Fraction of acquisition attempts that had to wait.
    pub fn wait_ratio(&self) -> f64 {
        let attempts = self.total_acquisitions + self.wait_events;
        if attempts == 0 {
            0.0
        } else {
            self.wait_events as f64 / attempts as f64
        }
    }
}

impl Default for CounterBank {
    fn default() -> Self {
        // Four programmable counters, a typical budget on the paper's era of
        // hardware; monitoring one section needs one slot.
        Self::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_instructions_over_cycles() {
        let mut counter = PerfCounter::new();
        assert!(counter.is_empty());
        counter.record(300, 200.0);
        assert!((counter.ipc() - 1.5).abs() < 1e-12);
        counter.record(100, 200.0);
        assert!((counter.ipc() - 1.0).abs() < 1e-12);
        counter.reset();
        assert_eq!(counter.ipc(), 0.0);
        assert!(counter.is_empty());
    }

    #[test]
    fn bank_exhaustion_counts_waits() {
        let mut bank = CounterBank::new(1);
        let slot = bank.try_acquire().unwrap();
        assert_eq!(bank.slots_in_use(), 1);
        assert!(bank.try_acquire().is_none());
        assert!(bank.try_acquire().is_none());
        assert_eq!(bank.wait_events(), 2);
        bank.release(slot);
        assert_eq!(bank.slots_in_use(), 0);
        assert!(bank.try_acquire().is_some());
        assert_eq!(bank.total_acquisitions(), 2);
        assert!(bank.wait_ratio() > 0.0 && bank.wait_ratio() < 1.0);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let mut bank = CounterBank::new(2);
        let slot = bank.try_acquire().unwrap();
        bank.release(slot);
        bank.release(slot);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_bank_is_rejected() {
        let _ = CounterBank::new(0);
    }

    #[test]
    fn default_bank_has_four_slots() {
        assert_eq!(CounterBank::default().slot_count(), 4);
    }
}
