//! Affinity masks: the mechanism the tuner uses to pin a process to a core
//! (or set of cores), mirroring Linux's `sched_setaffinity` which the paper
//! uses for its core switches ("core switches are done using the standard
//! process affinity API available for Linux", Section III).

use serde::{Deserialize, Serialize};

use crate::spec::{CoreId, CoreKind, MachineSpec};

/// A set of cores a process is allowed to run on.
///
/// # Examples
///
/// ```
/// use phase_amp::{AffinityMask, CoreId};
///
/// let mask = AffinityMask::single(CoreId(2));
/// assert!(mask.allows(CoreId(2)));
/// assert!(!mask.allows(CoreId(0)));
/// assert_eq!(mask.core_count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffinityMask {
    bits: u64,
}

impl AffinityMask {
    /// Maximum number of cores representable in a mask.
    pub const MAX_CORES: usize = 64;

    /// A mask allowing every core of the given machine.
    pub fn all_cores(spec: &MachineSpec) -> Self {
        Self::from_cores(spec.core_ids())
    }

    /// A mask allowing a single core.
    ///
    /// # Panics
    ///
    /// Panics if the core index is 64 or larger.
    pub fn single(core: CoreId) -> Self {
        Self::from_cores(std::iter::once(core))
    }

    /// A mask allowing every core of the given kind on the given machine.
    pub fn kind(spec: &MachineSpec, kind: CoreKind) -> Self {
        Self::from_cores(spec.cores_of_kind(kind))
    }

    /// A mask from an explicit list of cores.
    ///
    /// # Panics
    ///
    /// Panics if a core index is 64 or larger.
    pub fn from_cores(cores: impl IntoIterator<Item = CoreId>) -> Self {
        let mut bits = 0u64;
        for core in cores {
            assert!(
                core.index() < Self::MAX_CORES,
                "core index {core} exceeds the {} supported cores",
                Self::MAX_CORES
            );
            bits |= 1 << core.index();
        }
        Self { bits }
    }

    /// Whether the mask allows the given core.
    pub fn allows(&self, core: CoreId) -> bool {
        core.index() < Self::MAX_CORES && self.bits & (1 << core.index()) != 0
    }

    /// Whether the mask allows no core at all.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of cores allowed by the mask.
    pub fn core_count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterator over the allowed cores, in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..Self::MAX_CORES as u32)
            .map(CoreId)
            .filter(|c| self.allows(*c))
    }

    /// The intersection of two masks.
    pub fn intersect(&self, other: &AffinityMask) -> AffinityMask {
        AffinityMask {
            bits: self.bits & other.bits,
        }
    }

    /// The union of two masks.
    pub fn union(&self, other: &AffinityMask) -> AffinityMask {
        AffinityMask {
            bits: self.bits | other.bits,
        }
    }
}

impl std::fmt::Display for AffinityMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for core in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", core.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CoreId> for AffinityMask {
    fn from_iter<T: IntoIterator<Item = CoreId>>(iter: T) -> Self {
        Self::from_cores(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cores_allows_every_core_of_the_machine() {
        let spec = MachineSpec::core2_quad_amp();
        let mask = AffinityMask::all_cores(&spec);
        assert_eq!(mask.core_count(), 4);
        for core in spec.core_ids() {
            assert!(mask.allows(core));
        }
        assert!(!mask.allows(CoreId(4)));
    }

    #[test]
    fn kind_mask_selects_only_that_kind() {
        let spec = MachineSpec::core2_quad_amp();
        let slow = AffinityMask::kind(&spec, CoreKind(1));
        assert_eq!(slow.iter().collect::<Vec<_>>(), vec![CoreId(2), CoreId(3)]);
        assert!(!slow.allows(CoreId(0)));
    }

    #[test]
    fn set_operations_behave_like_sets() {
        let a = AffinityMask::from_cores([CoreId(0), CoreId(1)]);
        let b = AffinityMask::from_cores([CoreId(1), CoreId(2)]);
        assert_eq!(a.intersect(&b), AffinityMask::single(CoreId(1)));
        assert_eq!(a.union(&b).core_count(), 3);
        assert!(a.intersect(&AffinityMask::single(CoreId(3))).is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let mask: AffinityMask = [CoreId(5), CoreId(7)].into_iter().collect();
        assert!(mask.allows(CoreId(5)));
        assert!(mask.allows(CoreId(7)));
        assert_eq!(mask.core_count(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_core_index_is_rejected() {
        let _ = AffinityMask::single(CoreId(64));
    }

    #[test]
    fn display_lists_cores() {
        let mask = AffinityMask::from_cores([CoreId(0), CoreId(3)]);
        assert_eq!(format!("{mask}"), "{0,3}");
        assert_eq!(format!("{}", AffinityMask::from_cores([])), "{}");
    }
}
