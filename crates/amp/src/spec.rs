//! Machine specifications: cores, frequencies, and the cache hierarchy of a
//! performance-asymmetric multicore processor (AMP).
//!
//! The paper's evaluation machine is "an Intel Core 2 Quad processor with a
//! clock frequency of 2.4GHz and two cores under-clocked to 1.6GHz. There are
//! two L2 caches shared by two cores each. The cores running at the same
//! frequency share an L2 cache" (Section IV-A1). [`MachineSpec::core2_quad_amp`]
//! reproduces that configuration; other presets cover the 3-core future-work
//! setup and a symmetric control machine.

use serde::{Deserialize, Serialize};

/// Identifier of a core within a machine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub u32);

impl CoreId {
    /// The core id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A *kind* of core: cores of the same kind are interchangeable for the
/// tuner (same frequency, same cache sharing). The paper argues that grouping
/// cores into types keeps the approach scalable for many-core machines
/// (Section VI-C).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct CoreKind(pub u32);

impl CoreKind {
    /// The kind as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kind{}", self.0)
    }
}

/// Static description of one core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// The core's kind (cores of equal kind have identical specs).
    pub kind: CoreKind,
    /// Index of the L2 cache this core is attached to.
    pub l2_group: usize,
}

/// Static description of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Access latency in core cycles (on-die caches are clocked with the
    /// core, so their latency in cycles is frequency independent).
    pub latency_cycles: f64,
}

/// Full description of a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable name used in reports.
    pub name: String,
    /// Per-core specifications, indexed by [`CoreId`].
    pub cores: Vec<CoreSpec>,
    /// Private first-level cache, one per core.
    pub l1: CacheSpec,
    /// Shared second-level cache, one per `l2_group`.
    pub l2: CacheSpec,
    /// Main-memory latency in nanoseconds (frequency *dependent* in cycles:
    /// a faster core wastes more cycles per miss).
    pub memory_latency_ns: f64,
    /// Cost of migrating a process between cores, in cycles of the target
    /// core. The paper measures "approximately 1000 cycles" (Section IV-B3).
    pub core_switch_cycles: u64,
}

impl MachineSpec {
    /// The paper's evaluation machine: four cores, two at 2.4 GHz and two
    /// under-clocked to 1.6 GHz, with one shared 4 MB L2 per frequency pair.
    pub fn core2_quad_amp() -> Self {
        Self {
            name: "core2quad-2f2s".to_string(),
            cores: vec![
                CoreSpec {
                    freq_ghz: 2.4,
                    kind: CoreKind(0),
                    l2_group: 0,
                },
                CoreSpec {
                    freq_ghz: 2.4,
                    kind: CoreKind(0),
                    l2_group: 0,
                },
                CoreSpec {
                    freq_ghz: 1.6,
                    kind: CoreKind(1),
                    l2_group: 1,
                },
                CoreSpec {
                    freq_ghz: 1.6,
                    kind: CoreKind(1),
                    l2_group: 1,
                },
            ],
            l1: CacheSpec {
                capacity_bytes: 32 * 1024,
                latency_cycles: 0.5,
            },
            l2: CacheSpec {
                capacity_bytes: 4 * 1024 * 1024,
                latency_cycles: 8.0,
            },
            memory_latency_ns: 60.0,
            core_switch_cycles: 1000,
        }
    }

    /// The 3-core configuration from the paper's future-work discussion
    /// (2 fast, 1 slow; the paper reports a similar ~32% speedup on it).
    pub fn three_core_amp() -> Self {
        Self {
            name: "threecore-2f1s".to_string(),
            cores: vec![
                CoreSpec {
                    freq_ghz: 2.4,
                    kind: CoreKind(0),
                    l2_group: 0,
                },
                CoreSpec {
                    freq_ghz: 2.4,
                    kind: CoreKind(0),
                    l2_group: 0,
                },
                CoreSpec {
                    freq_ghz: 1.6,
                    kind: CoreKind(1),
                    l2_group: 1,
                },
            ],
            l1: CacheSpec {
                capacity_bytes: 32 * 1024,
                latency_cycles: 0.5,
            },
            l2: CacheSpec {
                capacity_bytes: 4 * 1024 * 1024,
                latency_cycles: 8.0,
            },
            memory_latency_ns: 60.0,
            core_switch_cycles: 1000,
        }
    }

    /// A symmetric machine with `cores` identical cores at `freq_ghz`,
    /// pairs of cores sharing an L2. Useful as a control configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `freq_ghz` is not positive.
    pub fn symmetric(cores: usize, freq_ghz: f64) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        assert!(freq_ghz > 0.0, "frequency must be positive");
        Self {
            name: format!("symmetric-{cores}x{freq_ghz}"),
            cores: (0..cores)
                .map(|i| CoreSpec {
                    freq_ghz,
                    kind: CoreKind(0),
                    l2_group: i / 2,
                })
                .collect(),
            l1: CacheSpec {
                capacity_bytes: 32 * 1024,
                latency_cycles: 0.5,
            },
            l2: CacheSpec {
                capacity_bytes: 4 * 1024 * 1024,
                latency_cycles: 8.0,
            },
            memory_latency_ns: 60.0,
            core_switch_cycles: 1000,
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Iterator over all core ids.
    pub fn core_ids(&self) -> impl Iterator<Item = CoreId> {
        (0..self.cores.len() as u32).map(CoreId)
    }

    /// Specification of one core.
    ///
    /// # Panics
    ///
    /// Panics if the core does not exist.
    pub fn core(&self, id: CoreId) -> &CoreSpec {
        &self.cores[id.index()]
    }

    /// The kind of a core.
    pub fn kind_of(&self, id: CoreId) -> CoreKind {
        self.core(id).kind
    }

    /// All distinct core kinds, ordered by kind id.
    pub fn kinds(&self) -> Vec<CoreKind> {
        let mut kinds: Vec<CoreKind> = self.cores.iter().map(|c| c.kind).collect();
        kinds.sort();
        kinds.dedup();
        kinds
    }

    /// Number of distinct core kinds.
    pub fn kind_count(&self) -> usize {
        self.kinds().len()
    }

    /// The cores of a given kind.
    pub fn cores_of_kind(&self, kind: CoreKind) -> Vec<CoreId> {
        self.core_ids()
            .filter(|id| self.kind_of(*id) == kind)
            .collect()
    }

    /// Cores attached to the given L2 group.
    pub fn cores_in_l2_group(&self, group: usize) -> Vec<CoreId> {
        self.core_ids()
            .filter(|id| self.core(*id).l2_group == group)
            .collect()
    }

    /// Number of distinct L2 groups.
    pub fn l2_group_count(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.l2_group)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Whether the machine has cores of more than one kind.
    pub fn is_asymmetric(&self) -> bool {
        self.kind_count() > 1
    }

    /// The fastest core kind (highest frequency).
    pub fn fastest_kind(&self) -> CoreKind {
        self.cores
            .iter()
            .max_by(|a, b| a.freq_ghz.total_cmp(&b.freq_ghz))
            .map(|c| c.kind)
            .expect("machine has cores")
    }

    /// The slowest core kind (lowest frequency).
    pub fn slowest_kind(&self) -> CoreKind {
        self.cores
            .iter()
            .min_by(|a, b| a.freq_ghz.total_cmp(&b.freq_ghz))
            .map(|c| c.kind)
            .expect("machine has cores")
    }

    /// Frequency of a representative core of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if no core has the given kind.
    pub fn kind_frequency(&self, kind: CoreKind) -> f64 {
        self.cores
            .iter()
            .find(|c| c.kind == kind)
            .map(|c| c.freq_ghz)
            .unwrap_or_else(|| panic!("no core of kind {kind}"))
    }
}

impl std::fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} cores, {} kinds)",
            self.name,
            self.core_count(),
            self.kind_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core2_quad_matches_paper_configuration() {
        let spec = MachineSpec::core2_quad_amp();
        assert_eq!(spec.core_count(), 4);
        assert_eq!(spec.kind_count(), 2);
        assert!(spec.is_asymmetric());
        assert_eq!(spec.cores_of_kind(CoreKind(0)), vec![CoreId(0), CoreId(1)]);
        assert_eq!(spec.cores_of_kind(CoreKind(1)), vec![CoreId(2), CoreId(3)]);
        // Same-frequency cores share an L2.
        assert_eq!(spec.core(CoreId(0)).l2_group, spec.core(CoreId(1)).l2_group);
        assert_ne!(spec.core(CoreId(1)).l2_group, spec.core(CoreId(2)).l2_group);
        assert_eq!(spec.l2_group_count(), 2);
        assert_eq!(spec.core_switch_cycles, 1000);
    }

    #[test]
    fn fastest_and_slowest_kinds() {
        let spec = MachineSpec::core2_quad_amp();
        assert_eq!(spec.fastest_kind(), CoreKind(0));
        assert_eq!(spec.slowest_kind(), CoreKind(1));
        assert!(spec.kind_frequency(CoreKind(0)) > spec.kind_frequency(CoreKind(1)));
    }

    #[test]
    fn three_core_preset_has_two_fast_one_slow() {
        let spec = MachineSpec::three_core_amp();
        assert_eq!(spec.core_count(), 3);
        assert_eq!(spec.cores_of_kind(CoreKind(0)).len(), 2);
        assert_eq!(spec.cores_of_kind(CoreKind(1)).len(), 1);
    }

    #[test]
    fn symmetric_machine_is_not_asymmetric() {
        let spec = MachineSpec::symmetric(4, 2.0);
        assert!(!spec.is_asymmetric());
        assert_eq!(spec.kind_count(), 1);
        assert_eq!(spec.fastest_kind(), spec.slowest_kind());
        assert_eq!(spec.l2_group_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn symmetric_rejects_zero_cores() {
        let _ = MachineSpec::symmetric(0, 2.0);
    }

    #[test]
    fn l2_group_membership() {
        let spec = MachineSpec::core2_quad_amp();
        assert_eq!(spec.cores_in_l2_group(0), vec![CoreId(0), CoreId(1)]);
        assert_eq!(spec.cores_in_l2_group(1), vec![CoreId(2), CoreId(3)]);
    }

    #[test]
    fn display_is_informative() {
        let spec = MachineSpec::core2_quad_amp();
        let s = format!("{spec}");
        assert!(s.contains("4 cores"));
        assert_eq!(format!("{}", CoreId(2)), "cpu2");
        assert_eq!(format!("{}", CoreKind(1)), "kind1");
    }
}
