//! # phase-amp
//!
//! The performance-asymmetric multicore (AMP) substrate for phase-based
//! tuning (Sondag & Rajan, CGO 2011). The paper evaluates on a real Intel
//! Core 2 Quad with two cores under-clocked; this crate replaces that hardware
//! with an analytical machine model that preserves the one property the
//! technique depends on: CPU-bound code gains the full frequency ratio from a
//! fast core, while memory-bound code wastes the extra cycles stalled on the
//! memory hierarchy and therefore shows a smaller IPC gap between core kinds.
//!
//! Contents:
//!
//! * [`MachineSpec`] — cores, kinds, frequencies, cache hierarchy, presets for
//!   the paper's 4-core and 3-core machines;
//! * [`CostModel`] — per-block cycle/IPC cost on any core, including shared-L2
//!   contention and the ~1000-cycle core-switch cost;
//! * [`PerfCounter`] / [`CounterBank`] — PAPI-like instructions/cycles
//!   counters with a bounded number of slots;
//! * [`AffinityMask`] — the `sched_setaffinity`-style mechanism core switches
//!   are expressed with.
//!
//! ## Example
//!
//! ```
//! use phase_amp::{CostModel, CoreId, MachineSpec, SharingContext};
//! use phase_ir::{AccessPattern, BasicBlock, BlockId, Instruction, MemRef, Terminator};
//!
//! let model = CostModel::new(MachineSpec::core2_quad_amp());
//! let memory_bound = BasicBlock::new(
//!     BlockId(0),
//!     vec![Instruction::load(MemRef::new(AccessPattern::Random, 256 * 1024 * 1024)); 32],
//!     Terminator::Return,
//! );
//! let on_fast = model.block_cost(CoreId(0), &memory_bound, SharingContext::exclusive());
//! let on_slow = model.block_cost(CoreId(2), &memory_bound, SharingContext::exclusive());
//! assert!(on_slow.ipc() > on_fast.ipc());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod affinity;
mod cost;
mod counters;
mod spec;

pub use affinity::AffinityMask;
pub use cost::{
    base_latency_cycles, miss_probability, pattern_is_latency_bound, BlockCost, CostModel,
    SharingContext,
};
pub use counters::{CounterBank, CounterSlot, PerfCounter};
pub use spec::{CacheSpec, CoreId, CoreKind, CoreSpec, MachineSpec};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineSpec>();
        assert_send_sync::<CostModel>();
        assert_send_sync::<CounterBank>();
        assert_send_sync::<AffinityMask>();
    }
}
