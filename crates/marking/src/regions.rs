//! Sections ("regions") of a program at the three marking granularities.
//!
//! A *section* is the unit that gets a single phase type: an individual basic
//! block, an Allen interval, or a natural loop. [`RegionMap`] records, for one
//! procedure, which section every block belongs to and the section's dominant
//! phase type. Phase-transition points are then simply edges between sections
//! of different types.

use std::collections::HashMap;

use phase_analysis::{BlockTyping, PhaseType};
use phase_cfg::{Cfg, DominatorTree, IntervalPartition, LoopForest};
use phase_ir::{BlockId, Location, ProcId, Procedure};
use serde::{Deserialize, Serialize};

use crate::config::{Granularity, MarkingConfig};
use crate::summarize::{dominant_type, loop_type_map, SectionWeight};

/// Identifier of a section within one procedure's [`RegionMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The region id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What program structure a region corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// A single basic block.
    Block,
    /// An Allen interval.
    Interval,
    /// A natural loop retained by the loop summarization.
    Loop,
}

/// One section of a procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    id: RegionId,
    kind: RegionKind,
    phase_type: Option<PhaseType>,
    blocks: Vec<BlockId>,
    instructions: usize,
}

impl Region {
    /// The region's identifier.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// What structure the region corresponds to.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// The region's dominant phase type, if it is typed.
    pub fn phase_type(&self) -> Option<PhaseType> {
        self.phase_type
    }

    /// The blocks making up the region.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Total instruction count of the region.
    pub fn instruction_count(&self) -> usize {
        self.instructions
    }
}

/// The sections of one procedure at a particular granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionMap {
    proc: ProcId,
    regions: Vec<Region>,
    /// Region of each block (by block index).
    membership: Vec<Option<RegionId>>,
}

impl RegionMap {
    /// The procedure this map describes.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// All regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing a block, if the block is reachable.
    pub fn region_of(&self, block: BlockId) -> Option<&Region> {
        self.membership
            .get(block.index())
            .copied()
            .flatten()
            .map(|id| &self.regions[id.index()])
    }

    /// The phase type of the section containing a block.
    pub fn type_of_block(&self, block: BlockId) -> Option<PhaseType> {
        self.region_of(block).and_then(Region::phase_type)
    }

    /// The phase type of the procedure's entry section.
    pub fn entry_type(&self, entry: BlockId) -> Option<PhaseType> {
        self.type_of_block(entry)
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Builds the region map of one procedure at the configured granularity.
    pub fn build(proc: &Procedure, typing: &BlockTyping, config: &MarkingConfig) -> Self {
        let cfg = Cfg::build(proc);
        match config.granularity {
            Granularity::BasicBlock => Self::block_regions(proc, typing, config),
            Granularity::Interval => Self::interval_regions(proc, &cfg, typing, config),
            Granularity::Loop => {
                let dom = DominatorTree::build(&cfg);
                let loops = LoopForest::build(&cfg, &dom);
                Self::loop_regions(proc, &cfg, &loops, typing, config)
            }
        }
    }

    /// Basic-block granularity: every block is its own region; blocks smaller
    /// than the threshold (or untyped) get no type.
    fn block_regions(proc: &Procedure, typing: &BlockTyping, config: &MarkingConfig) -> Self {
        let mut regions = Vec::new();
        let mut membership = vec![None; proc.block_count()];
        for block in proc.blocks() {
            let id = RegionId(regions.len() as u32);
            let loc = Location::new(proc.id(), block.id());
            let instructions = block.instruction_count();
            let phase_type = if instructions >= config.min_section_size {
                typing.type_of(loc)
            } else {
                None
            };
            regions.push(Region {
                id,
                kind: RegionKind::Block,
                phase_type,
                blocks: vec![block.id()],
                instructions,
            });
            membership[block.id().index()] = Some(id);
        }
        Self {
            proc: proc.id(),
            regions,
            membership,
        }
    }

    /// Interval granularity: one region per Allen interval, typed by the
    /// weighted dominant type of its member blocks (blocks inside loops weigh
    /// more, approximating the paper's cycle-aware traversal).
    fn interval_regions(
        proc: &Procedure,
        cfg: &Cfg,
        typing: &BlockTyping,
        config: &MarkingConfig,
    ) -> Self {
        let partition = IntervalPartition::build(cfg);
        let dom = DominatorTree::build(cfg);
        let loops = LoopForest::build(cfg, &dom);

        let mut regions = Vec::new();
        let mut membership = vec![None; proc.block_count()];
        for interval in partition.intervals() {
            let id = RegionId(regions.len() as u32);
            let weights: Vec<SectionWeight> = interval
                .blocks()
                .iter()
                .map(|&b| SectionWeight {
                    block: b,
                    phase_type: typing.type_of(Location::new(proc.id(), b)),
                    weight: proc.block_expect(b).instruction_count() as f64
                        * nesting_weight(loops.nesting_depth(b)),
                })
                .collect();
            let instructions: usize = interval
                .blocks()
                .iter()
                .map(|&b| proc.block_expect(b).instruction_count())
                .sum();
            let phase_type = if instructions >= config.min_section_size {
                dominant_type(&weights).map(|d| d.phase_type)
            } else {
                None
            };
            regions.push(Region {
                id,
                kind: RegionKind::Interval,
                phase_type,
                blocks: interval.blocks().to_vec(),
                instructions,
            });
            for &b in interval.blocks() {
                membership[b.index()] = Some(id);
            }
        }
        Self {
            proc: proc.id(),
            regions,
            membership,
        }
    }

    /// Loop granularity: regions are the loops *retained* by Algorithm 1's
    /// type map `T` (nested loops of the same type are merged into their
    /// parent); blocks outside every retained loop fall back to per-block
    /// regions.
    fn loop_regions(
        proc: &Procedure,
        cfg: &Cfg,
        loops: &LoopForest,
        typing: &BlockTyping,
        config: &MarkingConfig,
    ) -> Self {
        let retained = loop_type_map(proc, cfg, loops, typing);

        let mut regions = Vec::new();
        let mut membership: Vec<Option<RegionId>> = vec![None; proc.block_count()];

        // Retained loops become regions, innermost first so that a block in a
        // retained inner loop maps to the inner region even when an outer
        // retained loop also contains it.
        let mut entries: Vec<_> = retained.iter().collect();
        entries.sort_by_key(|entry| loops.loop_by_id(entry.loop_id).block_count());
        for entry in entries {
            let natural = loops.loop_by_id(entry.loop_id);
            let id = RegionId(regions.len() as u32);
            let blocks: Vec<BlockId> = natural.blocks().iter().copied().collect();
            let instructions: usize = blocks
                .iter()
                .map(|&b| proc.block_expect(b).instruction_count())
                .sum();
            let phase_type = if instructions >= config.min_section_size {
                Some(entry.phase_type)
            } else {
                None
            };
            regions.push(Region {
                id,
                kind: RegionKind::Loop,
                phase_type,
                blocks: blocks.clone(),
                instructions,
            });
            for b in blocks {
                if membership[b.index()].is_none() {
                    membership[b.index()] = Some(id);
                }
            }
        }

        // Remaining blocks: the loop technique "considers a section to be
        // loops in the attributed loop graph", so code outside every retained
        // loop is not a section at all — it stays untyped and never attracts
        // phase marks of its own.
        for block in proc.blocks() {
            if membership[block.id().index()].is_some() {
                continue;
            }
            let id = RegionId(regions.len() as u32);
            regions.push(Region {
                id,
                kind: RegionKind::Block,
                phase_type: None,
                blocks: vec![block.id()],
                instructions: block.instruction_count(),
            });
            membership[block.id().index()] = Some(id);
        }

        Self {
            proc: proc.id(),
            regions,
            membership,
        }
    }
}

/// Weight multiplier for a block at the given loop-nesting depth, the paper's
/// `wn(λ)`: "nodes which belong to inner loops are given a higher weight".
pub fn nesting_weight(depth: u32) -> f64 {
    10f64.powi(depth.min(6) as i32)
}

/// Region maps for every procedure of a program — the section-summarization
/// stage's artifact in `phase-core`'s staged pipeline (built by
/// `regions_stage`, consumed by [`crate::instrument_with_regions`], and
/// cached per *(program, machine, pipeline config)* by the artifact store).
pub type ProgramRegions = HashMap<ProcId, RegionMap>;

#[cfg(test)]
mod tests {
    use super::*;
    use phase_analysis::PhaseType;
    use phase_ir::{Instruction, ProcedureBuilder, Terminator};

    /// entry (typed 0) -> loop {header, latch} (typed 1) -> exit (typed 0)
    fn loopy_proc() -> (Procedure, [BlockId; 4], BlockTyping) {
        let mut body = ProcedureBuilder::new();
        let entry = body.add_block();
        let header = body.add_block();
        let latch = body.add_block();
        let exit = body.add_block();
        for b in [entry, header, latch, exit] {
            body.push_all(b, std::iter::repeat_n(Instruction::int_alu(), 20));
        }
        body.terminate(entry, Terminator::Jump(header));
        body.terminate(header, Terminator::Jump(latch));
        body.loop_branch(latch, header, exit, 50);
        body.terminate(exit, Terminator::Return);
        let proc = body.finish(ProcId(0), "loopy").unwrap();

        let mut typing = BlockTyping::new(2);
        typing.assign(Location::new(ProcId(0), entry), PhaseType(0));
        typing.assign(Location::new(ProcId(0), header), PhaseType(1));
        typing.assign(Location::new(ProcId(0), latch), PhaseType(1));
        typing.assign(Location::new(ProcId(0), exit), PhaseType(0));
        (proc, [entry, header, latch, exit], typing)
    }

    #[test]
    fn block_regions_respect_min_size() {
        let (proc, [entry, ..], typing) = loopy_proc();
        let small = RegionMap::build(&proc, &typing, &MarkingConfig::basic_block(10, 0));
        let large = RegionMap::build(&proc, &typing, &MarkingConfig::basic_block(50, 0));
        assert_eq!(small.type_of_block(entry), Some(PhaseType(0)));
        assert_eq!(large.type_of_block(entry), None);
        assert_eq!(small.region_count(), 4);
    }

    #[test]
    fn loop_regions_group_the_loop_into_one_region() {
        let (proc, [entry, header, latch, exit], typing) = loopy_proc();
        let map = RegionMap::build(&proc, &typing, &MarkingConfig::loop_level(10));
        let header_region = map.region_of(header).unwrap();
        let latch_region = map.region_of(latch).unwrap();
        assert_eq!(header_region.id(), latch_region.id());
        assert_eq!(header_region.kind(), RegionKind::Loop);
        assert_eq!(header_region.phase_type(), Some(PhaseType(1)));
        assert_ne!(map.region_of(entry).unwrap().id(), header_region.id());
        // Blocks outside every loop are not sections for the loop technique.
        assert_eq!(map.type_of_block(exit), None);
    }

    #[test]
    fn interval_regions_absorb_loop_blocks() {
        let (proc, [_, header, latch, _], typing) = loopy_proc();
        let map = RegionMap::build(&proc, &typing, &MarkingConfig::interval(10));
        // The loop header and latch fall in the same interval region.
        assert_eq!(
            map.region_of(header).unwrap().id(),
            map.region_of(latch).unwrap().id()
        );
        assert_eq!(
            map.region_of(header).unwrap().phase_type(),
            Some(PhaseType(1))
        );
    }

    #[test]
    fn min_size_untypes_small_loops() {
        let (proc, [_, header, ..], typing) = loopy_proc();
        // The loop has ~42 instructions; a 100-instruction floor untypes it.
        let map = RegionMap::build(&proc, &typing, &MarkingConfig::loop_level(100));
        assert_eq!(map.type_of_block(header), None);
    }

    #[test]
    fn nesting_weight_grows_with_depth() {
        assert!(nesting_weight(0) < nesting_weight(1));
        assert!(nesting_weight(1) < nesting_weight(2));
        assert_eq!(nesting_weight(0), 1.0);
    }

    #[test]
    fn untyped_blocks_produce_untyped_regions() {
        let (proc, [entry, ..], _) = loopy_proc();
        let empty_typing = BlockTyping::new(2);
        let map = RegionMap::build(&proc, &empty_typing, &MarkingConfig::basic_block(10, 0));
        assert_eq!(map.type_of_block(entry), None);
        assert!(map.regions().iter().all(|r| r.phase_type().is_none()));
    }
}
