//! Phase-transition detection.
//!
//! "A phase-transition point is a point in the program where runtime
//! characteristics are likely to change. Since sections of code with the same
//! type should have approximately similar behavior, we assume that program
//! behavior is likely to change when control flows from one type to another"
//! (Section II-A1d). This module finds those control-flow (and, for the
//! inter-procedural loop technique, call/return) edges.

use std::collections::{HashMap, VecDeque};

use phase_analysis::PhaseType;
use phase_cfg::Cfg;
use phase_ir::{BlockId, Location, ProcId, Program, Terminator};
use serde::{Deserialize, Serialize};

use crate::config::{Granularity, MarkingConfig};
use crate::regions::{ProgramRegions, RegionMap};

/// A phase-transition point: control flowing along this edge is expected to
/// change runtime behaviour to the `to_type` phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transition {
    /// Source location (last block of the previous section, or the calling
    /// block for a call transition).
    pub from: Location,
    /// Target location (first block of the next section).
    pub to: Location,
    /// Phase type of the section being entered.
    pub to_type: PhaseType,
    /// Phase type of the section being left, when it is typed.
    pub from_type: Option<PhaseType>,
}

/// Finds all phase-transition points of a program given its per-procedure
/// region maps.
///
/// * Intra-procedural CFG edges are considered at every granularity.
/// * Call and return edges are considered only for the loop technique, which
///   is the paper's inter-procedural variant.
/// * For the basic-block technique the lookahead filter is applied: a mark is
///   only kept "if majority of the successors of a code section up to a fixed
///   depth have the same type" as the target.
pub fn find_transitions(
    program: &Program,
    regions: &ProgramRegions,
    config: &MarkingConfig,
) -> Vec<Transition> {
    let mut transitions = Vec::new();

    // A program whose sections all share one phase type has no phase
    // transitions at all — it "will simply execute on any core the OS deems
    // appropriate" (Table 1's zero-switch benchmarks), so no marks are
    // inserted.
    let mut distinct_types: Vec<PhaseType> = regions
        .values()
        .flat_map(|map| map.regions().iter().filter_map(|r| r.phase_type()))
        .collect();
    distinct_types.sort();
    distinct_types.dedup();
    if distinct_types.len() < 2 {
        return transitions;
    }

    for proc in program.procedures() {
        let map = &regions[&proc.id()];
        let cfg = Cfg::build(proc);

        for block in proc.blocks() {
            let from_loc = Location::new(proc.id(), block.id());
            let from_region = map.region_of(block.id());
            let from_type = from_region.and_then(|r| r.phase_type());

            // Intra-procedural edges.
            for succ in block.successors() {
                let to_region = map.region_of(succ);
                let (Some(fr), Some(tr)) = (from_region, to_region) else {
                    continue;
                };
                if fr.id() == tr.id() {
                    continue;
                }
                let Some(to_type) = tr.phase_type() else {
                    continue;
                };
                if from_type == Some(to_type) {
                    continue;
                }
                if from_type.is_none() {
                    // Entering a typed section from untyped glue code is a
                    // transition too (the runtime must learn the new type),
                    // but only when the previous *known* type differs; we keep
                    // it, matching the paper's conservative marking.
                }
                if config.granularity == Granularity::BasicBlock
                    && !lookahead_agrees(&cfg, map, succ, to_type, config.lookahead_depth)
                {
                    continue;
                }
                transitions.push(Transition {
                    from: from_loc,
                    to: Location::new(proc.id(), succ),
                    to_type,
                    from_type,
                });
            }

            // Inter-procedural edges for the loop technique.
            if config.granularity == Granularity::Loop {
                if let Terminator::Call { callee, return_to } = *block.terminator() {
                    let callee_proc = program.procedure_expect(callee);
                    let callee_map = &regions[&callee];
                    let callee_entry = callee_proc.entry();
                    // Call edge: caller block -> callee entry.
                    if let Some(entry_type) = callee_map.type_of_block(callee_entry) {
                        if from_type != Some(entry_type) {
                            transitions.push(Transition {
                                from: from_loc,
                                to: Location::new(callee, callee_entry),
                                to_type: entry_type,
                                from_type,
                            });
                        }
                    }
                    // Return edges: each returning block of the callee ->
                    // continuation block. The mark must live on the edge the
                    // interpreter actually takes, i.e. from the block whose
                    // terminator is the `Return`.
                    if let Some(cont_type) = map.type_of_block(return_to) {
                        for ret_block in returning_blocks(callee_proc) {
                            let ret_type = callee_map.type_of_block(ret_block);
                            if ret_type != Some(cont_type) {
                                transitions.push(Transition {
                                    from: Location::new(callee, ret_block),
                                    to: Location::new(proc.id(), return_to),
                                    to_type: cont_type,
                                    from_type: ret_type,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    transitions.sort_by_key(|t| (t.from, t.to));
    transitions.dedup();
    transitions
}

/// Blocks of a procedure whose terminator returns to the caller.
fn returning_blocks(proc: &phase_ir::Procedure) -> Vec<BlockId> {
    proc.blocks()
        .iter()
        .filter(|b| matches!(b.terminator(), Terminator::Return))
        .map(|b| b.id())
        .collect()
}

/// Lookahead filter for the basic-block technique: walk successors of
/// `target` up to `depth` levels; keep the mark only when a strict majority
/// of the visited successors share `target`'s type. Depth 0 keeps every mark.
fn lookahead_agrees(
    cfg: &Cfg,
    map: &RegionMap,
    target: BlockId,
    target_type: PhaseType,
    depth: usize,
) -> bool {
    if depth == 0 {
        return true;
    }
    let mut same = 0usize;
    let mut different = 0usize;
    let mut queue = VecDeque::new();
    let mut seen: HashMap<BlockId, ()> = HashMap::new();
    queue.push_back((target, 0usize));
    seen.insert(target, ());
    while let Some((block, level)) = queue.pop_front() {
        if level >= depth {
            continue;
        }
        for &succ in cfg.successors(block) {
            if seen.insert(succ, ()).is_some() {
                continue;
            }
            match map.type_of_block(succ) {
                Some(t) if t == target_type => same += 1,
                Some(_) => different += 1,
                None => {}
            }
            queue.push_back((succ, level + 1));
        }
    }
    if same + different == 0 {
        // No typed successors to consult: keep the mark.
        return true;
    }
    same > different
}

/// Identifier of a procedure-entry transition used by callers that need to
/// know a program's starting phase type (the entry section of the entry
/// procedure).
pub fn entry_phase_type(program: &Program, regions: &ProgramRegions) -> Option<PhaseType> {
    let entry_proc: ProcId = program.entry();
    let proc = program.procedure_expect(entry_proc);
    regions[&entry_proc].type_of_block(proc.entry())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_analysis::BlockTyping;
    use phase_ir::{Instruction, ProgramBuilder, Terminator};

    /// Builds a single-procedure program whose blocks alternate between two
    /// phase types: t0 t0 t1 t1 t0.
    fn alternating_program() -> (Program, BlockTyping) {
        let mut builder = ProgramBuilder::new("alt");
        let main = builder.declare_procedure("main");
        let mut body = builder.procedure_builder();
        let blocks: Vec<BlockId> = (0..5).map(|_| body.add_block()).collect();
        for &b in &blocks {
            body.push_all(b, std::iter::repeat_n(Instruction::int_alu(), 20));
        }
        for window in blocks.windows(2) {
            body.terminate(window[0], Terminator::Jump(window[1]));
        }
        body.terminate(blocks[4], Terminator::Exit);
        builder.define_procedure(main, body).unwrap();
        let program = builder.build().unwrap();

        let mut typing = BlockTyping::new(2);
        let types = [0u32, 0, 1, 1, 0];
        for (i, ty) in types.iter().enumerate() {
            typing.assign(Location::new(ProcId(0), BlockId(i as u32)), PhaseType(*ty));
        }
        (program, typing)
    }

    fn regions_for(
        program: &Program,
        typing: &BlockTyping,
        config: &MarkingConfig,
    ) -> ProgramRegions {
        program
            .procedures()
            .iter()
            .map(|p| (p.id(), RegionMap::build(p, typing, config)))
            .collect()
    }

    #[test]
    fn transitions_appear_exactly_at_type_changes() {
        let (program, typing) = alternating_program();
        let config = MarkingConfig::basic_block(10, 0);
        let regions = regions_for(&program, &typing, &config);
        let transitions = find_transitions(&program, &regions, &config);
        // Type changes at edges 1->2 and 3->4.
        assert_eq!(transitions.len(), 2);
        assert_eq!(transitions[0].from, Location::new(ProcId(0), BlockId(1)));
        assert_eq!(transitions[0].to_type, PhaseType(1));
        assert_eq!(transitions[1].from, Location::new(ProcId(0), BlockId(3)));
        assert_eq!(transitions[1].to_type, PhaseType(0));
        assert_eq!(entry_phase_type(&program, &regions), Some(PhaseType(0)));
    }

    #[test]
    fn no_transitions_for_uniformly_typed_program() {
        let (program, _) = alternating_program();
        let mut typing = BlockTyping::new(2);
        for i in 0..5u32 {
            typing.assign(Location::new(ProcId(0), BlockId(i)), PhaseType(0));
        }
        let config = MarkingConfig::basic_block(10, 0);
        let regions = regions_for(&program, &typing, &config);
        assert!(find_transitions(&program, &regions, &config).is_empty());
    }

    #[test]
    fn lookahead_removes_marks_into_short_lived_sections() {
        // Block 2 is the only type-1 block; with lookahead 1 its successor
        // (type 0) disagrees, so the mark into block 2 is dropped.
        let (program, _) = alternating_program();
        let mut typing = BlockTyping::new(2);
        let types = [0u32, 0, 1, 0, 0];
        for (i, ty) in types.iter().enumerate() {
            typing.assign(Location::new(ProcId(0), BlockId(i as u32)), PhaseType(*ty));
        }
        let no_lookahead = MarkingConfig::basic_block(10, 0);
        let with_lookahead = MarkingConfig::basic_block(10, 1);
        let r0 = regions_for(&program, &typing, &no_lookahead);
        let r1 = regions_for(&program, &typing, &with_lookahead);
        let t0 = find_transitions(&program, &r0, &no_lookahead);
        let t1 = find_transitions(&program, &r1, &with_lookahead);
        assert_eq!(t0.len(), 2);
        // The mark into block 2 is gone; the mark back into the long type-0
        // run survives.
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].to, Location::new(ProcId(0), BlockId(3)));
    }

    #[test]
    fn small_blocks_never_produce_transitions() {
        let (program, typing) = alternating_program();
        let config = MarkingConfig::basic_block(50, 0);
        let regions = regions_for(&program, &typing, &config);
        assert!(find_transitions(&program, &regions, &config).is_empty());
    }

    #[test]
    fn loop_granularity_marks_call_transitions() {
        // main spins in a type-0 loop, then calls helper whose body is a
        // type-1 loop.
        let mut builder = ProgramBuilder::new("calls");
        let main = builder.declare_procedure("main");
        let helper = builder.declare_procedure("helper");

        let mut mbody = builder.procedure_builder();
        let ml = mbody.add_block();
        let m0 = mbody.add_block();
        let m1 = mbody.add_block();
        mbody.push_all(ml, std::iter::repeat_n(Instruction::int_alu(), 30));
        mbody.loop_branch(ml, ml, m0, 50);
        mbody.push_all(m0, std::iter::repeat_n(Instruction::int_alu(), 30));
        mbody.push_all(m1, std::iter::repeat_n(Instruction::int_alu(), 30));
        mbody.terminate(
            m0,
            Terminator::Call {
                callee: helper,
                return_to: m1,
            },
        );
        mbody.terminate(m1, Terminator::Exit);
        builder.define_procedure(main, mbody).unwrap();

        let mut hbody = builder.procedure_builder();
        let h0 = hbody.add_block();
        let h1 = hbody.add_block();
        hbody.push_all(h0, std::iter::repeat_n(Instruction::fp_mul(), 30));
        hbody.push_all(h1, std::iter::repeat_n(Instruction::fp_mul(), 30));
        hbody.loop_branch(h0, h0, h1, 100);
        hbody.terminate(h1, Terminator::Return);
        builder.define_procedure(helper, hbody).unwrap();
        let program = builder.build().unwrap();

        let mut typing = BlockTyping::new(2);
        typing.assign(Location::new(main, ml), PhaseType(0));
        typing.assign(Location::new(main, m0), PhaseType(0));
        typing.assign(Location::new(main, m1), PhaseType(0));
        typing.assign(Location::new(helper, h0), PhaseType(1));
        typing.assign(Location::new(helper, h1), PhaseType(1));

        let config = MarkingConfig::loop_level(10);
        let regions = regions_for(&program, &typing, &config);
        let transitions = find_transitions(&program, &regions, &config);

        // One transition into the callee's loop (type 1). The return goes
        // back to straight-line code, which the loop technique does not treat
        // as a section, so no return mark is inserted.
        assert!(transitions
            .iter()
            .any(|t| t.to == Location::new(helper, h0) && t.to_type == PhaseType(1)));
        assert_eq!(transitions.len(), 1);
        let _ = m1;
    }

    #[test]
    fn same_typed_call_produces_no_marks() {
        // Callee has the same type as the caller: the inter-procedural
        // technique "eliminates phase marks in functions that are called
        // inside of loops" of the same type.
        let mut builder = ProgramBuilder::new("samecall");
        let main = builder.declare_procedure("main");
        let helper = builder.declare_procedure("helper");
        let mut mbody = builder.procedure_builder();
        let m0 = mbody.add_block();
        let m1 = mbody.add_block();
        mbody.push_all(m0, std::iter::repeat_n(Instruction::int_alu(), 30));
        mbody.push_all(m1, std::iter::repeat_n(Instruction::int_alu(), 30));
        mbody.terminate(
            m0,
            Terminator::Call {
                callee: helper,
                return_to: m1,
            },
        );
        mbody.terminate(m1, Terminator::Exit);
        builder.define_procedure(main, mbody).unwrap();
        let mut hbody = builder.procedure_builder();
        let h0 = hbody.add_block();
        hbody.push_all(h0, std::iter::repeat_n(Instruction::int_alu(), 30));
        hbody.terminate(h0, Terminator::Return);
        builder.define_procedure(helper, hbody).unwrap();
        let program = builder.build().unwrap();

        let mut typing = BlockTyping::new(2);
        typing.assign(Location::new(main, m0), PhaseType(0));
        typing.assign(Location::new(main, m1), PhaseType(0));
        typing.assign(Location::new(helper, h0), PhaseType(0));

        let config = MarkingConfig::loop_level(10);
        let regions = regions_for(&program, &typing, &config);
        assert!(find_transitions(&program, &regions, &config).is_empty());
    }
}
