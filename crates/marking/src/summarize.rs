//! Dominant-type summarization for intervals and loops.
//!
//! This module implements the paper's Algorithm 1 ("Loop Summarization to
//! Find Dominant Type"): walk a loop breadth-first ignoring back edges,
//! accumulate a weight per phase type (`M ⊕ {π ↦ M(π) + wn(λ) · φ(η)}` with
//! nested blocks weighted more), take the heaviest type as the loop's type
//! and its share of the total weight as the *type strength* `σ`, then merge
//! same-typed nested loops so phase marks are hoisted out of loop bodies.

use std::collections::BTreeMap;

use phase_analysis::{BlockTyping, PhaseType};
use phase_cfg::{Cfg, LoopForest, LoopId};
use phase_ir::{BlockId, Location, Procedure};
use serde::{Deserialize, Serialize};

/// A block's contribution to a section's dominant type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SectionWeight {
    /// The block contributing.
    pub block: BlockId,
    /// The block's phase type, if it has one.
    pub phase_type: Option<PhaseType>,
    /// The block's weight (`wn(λ) · φ(η)` in the paper: instruction count
    /// scaled by nesting).
    pub weight: f64,
}

/// The dominant type of a section together with its strength `σ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dominant {
    /// The heaviest phase type.
    pub phase_type: PhaseType,
    /// The fraction of the total weight carried by that type, in `(0, 1]`.
    pub strength: f64,
}

/// Computes the dominant type of a section from per-block weights.
///
/// Returns `None` when no contributing block is typed. Ties are broken toward
/// the lower-numbered phase type (the paper uses "a simple heuristic").
pub fn dominant_type(weights: &[SectionWeight]) -> Option<Dominant> {
    let mut by_type: BTreeMap<PhaseType, f64> = BTreeMap::new();
    for w in weights {
        if let Some(ty) = w.phase_type {
            *by_type.entry(ty).or_insert(0.0) += w.weight;
        }
    }
    if by_type.is_empty() {
        return None;
    }
    let total: f64 = by_type.values().sum();
    if total <= 0.0 {
        return None;
    }
    // BTreeMap iteration is ordered by type, so `>` keeps the first (lowest
    // numbered) type on ties.
    let (phase_type, weight) = by_type.iter().fold((None, 0.0), |(best, best_w), (ty, w)| {
        if best.is_none() || *w > best_w {
            (Some(*ty), *w)
        } else {
            (best, best_w)
        }
    });
    phase_type.map(|phase_type| Dominant {
        phase_type,
        strength: weight / total,
    })
}

/// One entry of the loop type map `T`: a retained loop, its dominant type,
/// and the type's strength.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopTypeEntry {
    /// The retained loop.
    pub loop_id: LoopId,
    /// Its dominant phase type.
    pub phase_type: PhaseType,
    /// The type strength `σ` of the dominant type.
    pub strength: f64,
}

/// The loop type map `T` of one procedure after Algorithm 1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LoopTypeMap {
    entries: Vec<LoopTypeEntry>,
}

impl LoopTypeMap {
    /// The retained loops with their types.
    pub fn iter(&self) -> impl Iterator<Item = &LoopTypeEntry> {
        self.entries.iter()
    }

    /// Number of retained loops.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no loop was retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the entry for a loop, if it was retained.
    pub fn get(&self, id: LoopId) -> Option<&LoopTypeEntry> {
        self.entries.iter().find(|e| e.loop_id == id)
    }

    /// Whether a loop was retained.
    pub fn contains(&self, id: LoopId) -> bool {
        self.get(id).is_some()
    }

    fn insert(&mut self, entry: LoopTypeEntry) {
        self.entries.retain(|e| e.loop_id != entry.loop_id);
        self.entries.push(entry);
    }

    fn remove(&mut self, id: LoopId) {
        self.entries.retain(|e| e.loop_id != id);
    }
}

/// Runs Algorithm 1 over every loop of a procedure, innermost loops first,
/// and returns the resulting type map `T`.
///
/// The weight of a block is its instruction count `φ(η)` scaled by
/// `wn(λ) = 10^λ`, where `λ` counts how many loops nested inside the current
/// loop contain the block — exactly the paper's "nodes which belong to inner
/// loops are given a higher weight".
pub fn loop_type_map(
    proc: &Procedure,
    _cfg: &Cfg,
    loops: &LoopForest,
    typing: &BlockTyping,
) -> LoopTypeMap {
    let mut map = LoopTypeMap::default();

    for loop_id in loops.inner_to_outer() {
        let natural = loops.loop_by_id(loop_id);

        // Accumulate M over the loop's blocks.
        let weights: Vec<SectionWeight> = natural
            .blocks()
            .iter()
            .map(|&block| {
                let lambda = loops.nesting_depth(block).saturating_sub(natural.depth());
                SectionWeight {
                    block,
                    phase_type: typing.type_of(Location::new(proc.id(), block)),
                    weight: proc.block_expect(block).instruction_count() as f64
                        * crate::regions::nesting_weight(lambda),
                }
            })
            .collect();

        let Some(dominant) = dominant_type(&weights) else {
            // An untyped loop is never retained; any retained children stay.
            continue;
        };
        let candidate = LoopTypeEntry {
            loop_id,
            phase_type: dominant.phase_type,
            strength: dominant.strength,
        };

        // Direct children already retained in T.
        let retained_children: Vec<LoopTypeEntry> = loops
            .direct_children(loop_id)
            .iter()
            .filter_map(|child| map.get(*child).copied())
            .collect();

        match retained_children.len() {
            // No retained nested loop: retain this one.
            0 => map.insert(candidate),
            // Exactly one nested loop: merge if same type, or if this loop's
            // typing is stronger; otherwise keep the child only.
            1 => {
                let child = retained_children[0];
                if child.phase_type == candidate.phase_type || child.strength < candidate.strength {
                    map.remove(child.loop_id);
                    map.insert(candidate);
                }
            }
            // Two or more disjoint nested loops: merge only when they all
            // agree with the outer loop's type.
            _ => {
                let all_same = retained_children
                    .iter()
                    .all(|c| c.phase_type == candidate.phase_type);
                if all_same {
                    for child in &retained_children {
                        map.remove(child.loop_id);
                    }
                    map.insert(candidate);
                }
            }
        }
    }

    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_cfg::DominatorTree;
    use phase_ir::{Instruction, ProcId, ProcedureBuilder, Terminator};

    fn weight(ty: Option<u32>, w: f64) -> SectionWeight {
        SectionWeight {
            block: BlockId(0),
            phase_type: ty.map(PhaseType),
            weight: w,
        }
    }

    #[test]
    fn dominant_type_picks_heaviest() {
        let d = dominant_type(&[weight(Some(0), 10.0), weight(Some(1), 30.0)]).unwrap();
        assert_eq!(d.phase_type, PhaseType(1));
        assert!((d.strength - 0.75).abs() < 1e-9);
    }

    #[test]
    fn dominant_type_ignores_untyped_blocks() {
        let d = dominant_type(&[weight(None, 100.0), weight(Some(0), 1.0)]).unwrap();
        assert_eq!(d.phase_type, PhaseType(0));
        assert_eq!(d.strength, 1.0);
    }

    #[test]
    fn dominant_type_of_untyped_section_is_none() {
        assert!(dominant_type(&[weight(None, 5.0)]).is_none());
        assert!(dominant_type(&[]).is_none());
    }

    #[test]
    fn dominant_type_tie_breaks_to_lower_type() {
        let d = dominant_type(&[weight(Some(1), 10.0), weight(Some(0), 10.0)]).unwrap();
        assert_eq!(d.phase_type, PhaseType(0));
    }

    /// Builds nested loops: outer loop contains an inner loop; block types and
    /// sizes are configurable per block.
    fn nested_loop_proc_sized(
        types: &[(u32, u32)],
        sizes: [usize; 6],
    ) -> (Procedure, LoopForest, BlockTyping, Cfg) {
        // blocks: 0 entry, 1 outer header, 2 inner header, 3 inner latch,
        //         4 outer latch, 5 exit
        let mut body = ProcedureBuilder::new();
        let blocks: Vec<BlockId> = (0..6).map(|_| body.add_block()).collect();
        for (&b, &size) in blocks.iter().zip(sizes.iter()) {
            body.push_all(b, std::iter::repeat_n(Instruction::int_alu(), size));
        }
        body.terminate(blocks[0], Terminator::Jump(blocks[1]));
        body.terminate(blocks[1], Terminator::Jump(blocks[2]));
        body.terminate(blocks[2], Terminator::Jump(blocks[3]));
        body.loop_branch(blocks[3], blocks[2], blocks[4], 10);
        body.loop_branch(blocks[4], blocks[1], blocks[5], 10);
        body.terminate(blocks[5], Terminator::Return);
        let proc = body.finish(ProcId(0), "nested").unwrap();
        let cfg = Cfg::build(&proc);
        let dom = DominatorTree::build(&cfg);
        let loops = LoopForest::build(&cfg, &dom);
        let mut typing = BlockTyping::new(2);
        for &(block, ty) in types {
            typing.assign(Location::new(ProcId(0), BlockId(block)), PhaseType(ty));
        }
        (proc, loops, typing, cfg)
    }

    fn nested_loop_proc(types: &[(u32, u32)]) -> (Procedure, LoopForest, BlockTyping, Cfg) {
        nested_loop_proc_sized(types, [10; 6])
    }

    #[test]
    fn same_typed_nested_loops_merge_into_outer() {
        // Everything type 0 -> only the outer loop is retained.
        let (proc, loops, typing, cfg) = nested_loop_proc(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let map = loop_type_map(&proc, &cfg, &loops, &typing);
        assert_eq!(map.len(), 1);
        let entry = map.iter().next().unwrap();
        assert_eq!(entry.phase_type, PhaseType(0));
        let retained = loops.loop_by_id(entry.loop_id);
        assert_eq!(retained.depth(), 1, "outer loop retained");
    }

    #[test]
    fn dominant_inner_loop_absorbs_outer_loop_of_same_dominant_type() {
        // The heavily-weighted inner loop makes type 1 dominant for the outer
        // loop as well, so both collapse into one retained outer region.
        let (proc, loops, typing, cfg) = nested_loop_proc(&[(1, 0), (2, 1), (3, 1), (4, 0)]);
        let map = loop_type_map(&proc, &cfg, &loops, &typing);
        assert_eq!(map.len(), 1);
        let entry = map.iter().next().unwrap();
        assert_eq!(entry.phase_type, PhaseType(1));
        assert_eq!(
            loops.loop_by_id(entry.loop_id).depth(),
            1,
            "outer loop retained"
        );
    }

    #[test]
    fn differently_typed_inner_loop_survives_when_stronger() {
        // A tiny, purely type-1 inner loop (σ = 1) inside a large type-0
        // outer loop: the outer loop's dominant type differs from the inner
        // loop's and its strength is lower, so the inner loop is kept and the
        // outer loop is not retained.
        let (proc, loops, typing, cfg) =
            nested_loop_proc_sized(&[(1, 0), (2, 1), (3, 1), (4, 0)], [10, 50, 2, 2, 50, 10]);
        let map = loop_type_map(&proc, &cfg, &loops, &typing);
        assert_eq!(map.len(), 1);
        let entry = map.iter().next().unwrap();
        assert_eq!(entry.phase_type, PhaseType(1));
        assert_eq!(
            loops.loop_by_id(entry.loop_id).depth(),
            2,
            "inner loop retained"
        );
        assert!((entry.strength - 1.0).abs() < 1e-9);
    }

    #[test]
    fn untyped_loops_are_not_retained() {
        let (proc, loops, typing, cfg) = nested_loop_proc(&[]);
        let map = loop_type_map(&proc, &cfg, &loops, &typing);
        assert!(map.is_empty());
    }

    #[test]
    fn loop_map_lookup_api() {
        let (proc, loops, typing, cfg) = nested_loop_proc(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let map = loop_type_map(&proc, &cfg, &loops, &typing);
        let retained_id = map.iter().next().unwrap().loop_id;
        assert!(map.contains(retained_id));
        assert!(map.get(retained_id).is_some());
        let other = loops
            .loops()
            .iter()
            .map(|l| l.id())
            .find(|id| *id != retained_id)
            .unwrap();
        assert!(!map.contains(other));
    }
}
