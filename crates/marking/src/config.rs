//! Marking configurations: the technique variants evaluated by the paper.
//!
//! The paper names its variants `BB[min,lookahead]`, `Int[min]`, and
//! `Loop[min]` (Table 2). [`MarkingConfig`] carries the same three knobs:
//! granularity, minimum section size, and lookahead depth.

use serde::{Deserialize, Serialize};

/// Which program structure a "section" is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Sections are individual basic blocks (Section II-A2a).
    BasicBlock,
    /// Sections are Allen intervals summarized to a dominant type
    /// (Section II-A2b).
    Interval,
    /// Sections are natural loops summarized inter-procedurally with
    /// Algorithm 1 (Section II-A2c).
    Loop,
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Granularity::BasicBlock => write!(f, "BB"),
            Granularity::Interval => write!(f, "Int"),
            Granularity::Loop => write!(f, "Loop"),
        }
    }
}

/// Configuration of the phase-transition marking stage.
///
/// # Examples
///
/// ```
/// use phase_marking::MarkingConfig;
///
/// let best = MarkingConfig::loop_level(45);
/// assert_eq!(best.to_string(), "Loop[45]");
/// let bb = MarkingConfig::basic_block(15, 2);
/// assert_eq!(bb.to_string(), "BB[15,2]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MarkingConfig {
    /// What a section is.
    pub granularity: Granularity,
    /// Minimum section size in instructions; smaller sections are not typed
    /// and never get phase marks.
    pub min_section_size: usize,
    /// Lookahead depth for the basic-block technique: a mark is inserted only
    /// if the majority of the target's successors up to this depth share its
    /// type. `0` disables the filter. Ignored by the other granularities.
    pub lookahead_depth: usize,
}

impl MarkingConfig {
    /// Basic-block marking `BB[min,lookahead]`.
    pub fn basic_block(min_section_size: usize, lookahead_depth: usize) -> Self {
        Self {
            granularity: Granularity::BasicBlock,
            min_section_size,
            lookahead_depth,
        }
    }

    /// Interval marking `Int[min]`.
    pub fn interval(min_section_size: usize) -> Self {
        Self {
            granularity: Granularity::Interval,
            min_section_size,
            lookahead_depth: 0,
        }
    }

    /// Loop marking `Loop[min]` — the paper's best technique at `Loop[45]`.
    pub fn loop_level(min_section_size: usize) -> Self {
        Self {
            granularity: Granularity::Loop,
            min_section_size,
            lookahead_depth: 0,
        }
    }

    /// The paper's best-performing variant: `Loop[45]`.
    pub fn paper_best() -> Self {
        Self::loop_level(45)
    }

    /// All 18 variants of Table 2: `BB[{10,15,20},{0..3}]`, `Int[{30,45,60}]`,
    /// `Loop[{30,45,60}]`.
    pub fn table2_variants() -> Vec<Self> {
        let mut variants = Vec::new();
        for min in [10, 15, 20] {
            for lookahead in 0..=3 {
                variants.push(Self::basic_block(min, lookahead));
            }
        }
        for min in [30, 45, 60] {
            variants.push(Self::interval(min));
        }
        for min in [30, 45, 60] {
            variants.push(Self::loop_level(min));
        }
        variants
    }
}

impl Default for MarkingConfig {
    fn default() -> Self {
        Self::paper_best()
    }
}

impl std::fmt::Display for MarkingConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.granularity {
            Granularity::BasicBlock => {
                write!(f, "BB[{},{}]", self.min_section_size, self.lookahead_depth)
            }
            Granularity::Interval => write!(f, "Int[{}]", self.min_section_size),
            Granularity::Loop => write!(f, "Loop[{}]", self.min_section_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(MarkingConfig::basic_block(10, 3).to_string(), "BB[10,3]");
        assert_eq!(MarkingConfig::interval(60).to_string(), "Int[60]");
        assert_eq!(MarkingConfig::loop_level(30).to_string(), "Loop[30]");
        assert_eq!(MarkingConfig::default().to_string(), "Loop[45]");
    }

    #[test]
    fn table2_has_eighteen_variants() {
        let variants = MarkingConfig::table2_variants();
        assert_eq!(variants.len(), 18);
        let unique: std::collections::HashSet<_> = variants.iter().collect();
        assert_eq!(unique.len(), 18);
        assert!(variants.contains(&MarkingConfig::paper_best()));
    }

    #[test]
    fn granularity_display() {
        assert_eq!(Granularity::BasicBlock.to_string(), "BB");
        assert_eq!(Granularity::Interval.to_string(), "Int");
        assert_eq!(Granularity::Loop.to_string(), "Loop");
    }
}
