//! Phase marks and the instrumented program.
//!
//! "Each phase-transition point is statically instrumented to insert a small
//! code fragment which we call a phase mark. A phase mark contains information
//! about the phase type for the current section, code for dynamic performance
//! analysis, and code for making core switching decisions" (Section II). In
//! this reproduction the binary is not literally rewritten; instead
//! [`InstrumentedProgram`] records, per control-flow edge, the mark the
//! interpreter must execute when control crosses that edge, together with the
//! byte and instruction overhead the real rewriter would have added.

use std::collections::HashMap;
use std::sync::Arc;

use phase_analysis::{BlockTyping, PhaseType};
use phase_ir::{Location, Program};
use serde::{Deserialize, Serialize};

use crate::config::MarkingConfig;
use crate::regions::{ProgramRegions, RegionMap};
use crate::transitions::{entry_phase_type, find_transitions, Transition};

/// Identifier of a phase mark within an [`InstrumentedProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MarkId(pub u32);

impl MarkId {
    /// The mark id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Size in bytes of one phase mark in the rewritten binary. The paper reports
/// "each phase mark is at most 78 bytes" (Section IV-B1).
pub const MARK_SIZE_BYTES: u32 = 78;

/// Number of extra instructions a phase mark executes when it only performs a
/// core-switch decision (the common case once a phase type's assignment is
/// known): an unconditional jump plus "a relatively small number of pushes"
/// and the affinity check (Section III).
pub const MARK_DECISION_INSTRUCTIONS: u64 = 12;

/// Number of extra instructions a phase mark executes when it also starts or
/// stops performance monitoring for a representative section.
pub const MARK_MONITOR_INSTRUCTIONS: u64 = 40;

/// One inserted phase mark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseMark {
    /// The mark's identifier.
    pub id: MarkId,
    /// The edge the mark is attached to.
    pub from: Location,
    /// The edge's target: the first block of the section being entered.
    pub to: Location,
    /// Phase type of the section being entered (stored in the mark so the
    /// runtime knows which cluster's statistics to consult).
    pub phase_type: PhaseType,
    /// Phase type of the section being left, when known statically.
    pub previous_type: Option<PhaseType>,
    /// Encoded size of the mark in bytes.
    pub size_bytes: u32,
}

/// Space-overhead summary for one instrumented program (Figure 3's metric).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MarkStats {
    /// Number of phase marks inserted.
    pub mark_count: usize,
    /// Total bytes added by marks.
    pub added_bytes: u64,
    /// Size of the original program in bytes.
    pub original_bytes: u64,
    /// `added_bytes / original_bytes`.
    pub space_overhead: f64,
}

/// A program together with its phase marks.
///
/// The original program is shared behind an [`Arc`] so scheduler processes can
/// hold the instrumented program cheaply.
///
/// # Examples
///
/// ```
/// use phase_analysis::{assign_block_types, StaticTypingConfig};
/// use phase_ir::{Instruction, ProgramBuilder, Terminator};
/// use phase_marking::{instrument, MarkingConfig};
///
/// let mut builder = ProgramBuilder::new("tiny");
/// let main = builder.declare_procedure("main");
/// let mut body = builder.procedure_builder();
/// let b = body.add_block();
/// body.push_all(b, std::iter::repeat(Instruction::int_alu()).take(20));
/// body.terminate(b, Terminator::Exit);
/// builder.define_procedure(main, body)?;
/// let program = builder.build()?;
///
/// let typing = assign_block_types(&program, &StaticTypingConfig::default());
/// let instrumented = instrument(&program, &typing, &MarkingConfig::paper_best());
/// assert_eq!(instrumented.stats().mark_count, instrumented.marks().len());
/// # Ok::<(), phase_ir::IrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InstrumentedProgram {
    program: Arc<Program>,
    config: MarkingConfig,
    marks: Vec<PhaseMark>,
    by_edge: HashMap<(Location, Location), MarkId>,
    entry_type: Option<PhaseType>,
    stats: MarkStats,
}

impl InstrumentedProgram {
    /// Reassembles an instrumented program from its serialized parts — the
    /// decode path of an artifact spill. Mark ids are renumbered by position
    /// and the edge index and space-overhead stats are rebuilt, so the result
    /// is indistinguishable from one produced by [`instrument`] on the same
    /// inputs.
    pub fn from_parts(
        program: Arc<Program>,
        config: MarkingConfig,
        mut marks: Vec<PhaseMark>,
        entry_type: Option<PhaseType>,
    ) -> Self {
        let mut by_edge = HashMap::with_capacity(marks.len());
        for (idx, mark) in marks.iter_mut().enumerate() {
            mark.id = MarkId(idx as u32);
            by_edge.insert((mark.from, mark.to), mark.id);
        }
        let original_bytes = program.stats().size_bytes;
        let added_bytes: u64 = marks.iter().map(|m| u64::from(m.size_bytes)).sum();
        let stats = MarkStats {
            mark_count: marks.len(),
            added_bytes,
            original_bytes,
            space_overhead: if original_bytes == 0 {
                0.0
            } else {
                added_bytes as f64 / original_bytes as f64
            },
        };
        Self {
            program,
            config,
            marks,
            by_edge,
            entry_type,
            stats,
        }
    }

    /// The underlying (un-rewritten) program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The marking configuration that produced this instrumentation.
    pub fn config(&self) -> &MarkingConfig {
        &self.config
    }

    /// All phase marks, ordered by edge.
    pub fn marks(&self) -> &[PhaseMark] {
        &self.marks
    }

    /// The mark on a specific edge, if any.
    pub fn mark_on_edge(&self, from: Location, to: Location) -> Option<&PhaseMark> {
        self.by_edge
            .get(&(from, to))
            .map(|id| &self.marks[id.index()])
    }

    /// The phase type of the program's entry section, if it is typed.
    pub fn entry_type(&self) -> Option<PhaseType> {
        self.entry_type
    }

    /// Number of phase marks.
    pub fn mark_count(&self) -> usize {
        self.marks.len()
    }

    /// Space-overhead statistics (the paper's Figure 3 metric).
    pub fn stats(&self) -> MarkStats {
        self.stats
    }

    /// Distinct phase types that appear in marks.
    pub fn phase_types(&self) -> Vec<PhaseType> {
        let mut types: Vec<PhaseType> = self.marks.iter().map(|m| m.phase_type).collect();
        if let Some(t) = self.entry_type {
            types.push(t);
        }
        types.sort();
        types.dedup();
        types
    }
}

/// Runs the full static phase-transition analysis and marking pipeline over a
/// program: build sections at the configured granularity, find transitions,
/// and attach one phase mark per transition edge.
pub fn instrument(
    program: &Program,
    typing: &BlockTyping,
    config: &MarkingConfig,
) -> InstrumentedProgram {
    let regions: ProgramRegions = program
        .procedures()
        .iter()
        .map(|p| (p.id(), RegionMap::build(p, typing, config)))
        .collect();
    instrument_with_regions(program, &regions, config)
}

/// Like [`instrument`], but with pre-computed region maps (useful when the
/// caller also needs the regions, e.g. for reporting).
pub fn instrument_with_regions(
    program: &Program,
    regions: &ProgramRegions,
    config: &MarkingConfig,
) -> InstrumentedProgram {
    let transitions = find_transitions(program, regions, config);
    let entry_type = entry_phase_type(program, regions);

    let mut marks = Vec::with_capacity(transitions.len());
    let mut by_edge = HashMap::with_capacity(transitions.len());
    for (idx, transition) in transitions.iter().enumerate() {
        let Transition {
            from,
            to,
            to_type,
            from_type,
        } = *transition;
        let id = MarkId(idx as u32);
        marks.push(PhaseMark {
            id,
            from,
            to,
            phase_type: to_type,
            previous_type: from_type,
            size_bytes: MARK_SIZE_BYTES,
        });
        by_edge.insert((from, to), id);
    }

    let original_bytes = program.stats().size_bytes;
    let added_bytes: u64 = marks.iter().map(|m| u64::from(m.size_bytes)).sum();
    let stats = MarkStats {
        mark_count: marks.len(),
        added_bytes,
        original_bytes,
        space_overhead: if original_bytes == 0 {
            0.0
        } else {
            added_bytes as f64 / original_bytes as f64
        },
    };

    InstrumentedProgram {
        program: Arc::new(program.clone()),
        config: *config,
        marks,
        by_edge,
        entry_type,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_ir::{BlockId, Instruction, ProcId, ProgramBuilder, Terminator};

    fn alternating_program(block_size: usize) -> (Program, BlockTyping) {
        let mut builder = ProgramBuilder::new("alt");
        let main = builder.declare_procedure("main");
        let mut body = builder.procedure_builder();
        let blocks: Vec<BlockId> = (0..6).map(|_| body.add_block()).collect();
        for &b in &blocks {
            body.push_all(b, std::iter::repeat_n(Instruction::int_alu(), block_size));
        }
        for w in blocks.windows(2) {
            body.terminate(w[0], Terminator::Jump(w[1]));
        }
        body.terminate(blocks[5], Terminator::Exit);
        builder.define_procedure(main, body).unwrap();
        let program = builder.build().unwrap();

        let mut typing = BlockTyping::new(2);
        for (i, ty) in [0u32, 1, 0, 1, 0, 1].iter().enumerate() {
            typing.assign(Location::new(ProcId(0), BlockId(i as u32)), PhaseType(*ty));
        }
        (program, typing)
    }

    #[test]
    fn marks_are_attached_to_every_transition_edge() {
        let (program, typing) = alternating_program(20);
        let instrumented = instrument(&program, &typing, &MarkingConfig::basic_block(10, 0));
        assert_eq!(instrumented.mark_count(), 5);
        let mark = instrumented
            .mark_on_edge(
                Location::new(ProcId(0), BlockId(0)),
                Location::new(ProcId(0), BlockId(1)),
            )
            .expect("edge 0->1 is a transition");
        assert_eq!(mark.phase_type, PhaseType(1));
        assert_eq!(mark.previous_type, Some(PhaseType(0)));
        assert_eq!(mark.size_bytes, MARK_SIZE_BYTES);
        assert!(instrumented
            .mark_on_edge(
                Location::new(ProcId(0), BlockId(2)),
                Location::new(ProcId(0), BlockId(5)),
            )
            .is_none());
    }

    #[test]
    fn space_overhead_matches_added_bytes() {
        let (program, typing) = alternating_program(20);
        let instrumented = instrument(&program, &typing, &MarkingConfig::basic_block(10, 0));
        let stats = instrumented.stats();
        assert_eq!(stats.mark_count, 5);
        assert_eq!(stats.added_bytes, 5 * u64::from(MARK_SIZE_BYTES));
        assert_eq!(stats.original_bytes, program.stats().size_bytes);
        assert!(stats.space_overhead > 0.0);
        assert!(
            (stats.space_overhead - stats.added_bytes as f64 / stats.original_bytes as f64).abs()
                < 1e-12
        );
    }

    #[test]
    fn bigger_blocks_mean_lower_space_overhead() {
        let (small_prog, small_typing) = alternating_program(20);
        let (large_prog, large_typing) = alternating_program(200);
        let config = MarkingConfig::basic_block(10, 0);
        let small = instrument(&small_prog, &small_typing, &config);
        let large = instrument(&large_prog, &large_typing, &config);
        assert!(large.stats().space_overhead < small.stats().space_overhead);
    }

    #[test]
    fn raising_min_size_reduces_marks() {
        let (program, typing) = alternating_program(20);
        let low = instrument(&program, &typing, &MarkingConfig::basic_block(10, 0));
        let high = instrument(&program, &typing, &MarkingConfig::basic_block(40, 0));
        assert!(high.mark_count() < low.mark_count());
        assert_eq!(high.mark_count(), 0);
    }

    #[test]
    fn entry_type_and_phase_types_are_reported() {
        let (program, typing) = alternating_program(20);
        let instrumented = instrument(&program, &typing, &MarkingConfig::basic_block(10, 0));
        assert_eq!(instrumented.entry_type(), Some(PhaseType(0)));
        assert_eq!(instrumented.phase_types(), vec![PhaseType(0), PhaseType(1)]);
        assert_eq!(*instrumented.config(), MarkingConfig::basic_block(10, 0));
    }

    #[test]
    fn untyped_program_gets_no_marks() {
        let (program, _) = alternating_program(20);
        let typing = BlockTyping::new(2);
        let instrumented = instrument(&program, &typing, &MarkingConfig::paper_best());
        assert_eq!(instrumented.mark_count(), 0);
        assert_eq!(instrumented.entry_type(), None);
        assert_eq!(instrumented.stats().space_overhead, 0.0);
    }
}
