//! # phase-marking
//!
//! The static phase-transition analysis and instrumentation of phase-based
//! tuning (Sondag & Rajan, CGO 2011, Section II-A): divide a program into
//! *sections* (basic blocks, Allen intervals, or natural loops), give every
//! section a dominant phase type, find the control-flow edges where the type
//! changes, and insert a *phase mark* at each such edge.
//!
//! The three granularities correspond to the paper's technique families
//! `BB[min,lookahead]`, `Int[min]`, and `Loop[min]`, with `Loop[45]` being the
//! variant the paper recommends. Loop summarization follows the paper's
//! Algorithm 1, including nesting-level weights, type strengths, and the
//! merging rules that hoist phase marks out of nested loops; the loop
//! technique is also inter-procedural (call and return edges are marked).
//!
//! ## Example
//!
//! ```
//! use phase_analysis::{assign_block_types, StaticTypingConfig};
//! use phase_ir::{AccessPattern, Instruction, MemRef, ProgramBuilder, Terminator};
//! use phase_marking::{instrument, MarkingConfig};
//!
//! // A program that alternates between a CPU-heavy and a memory-heavy block.
//! let mut builder = ProgramBuilder::new("two-phase");
//! let main = builder.declare_procedure("main");
//! let mut body = builder.procedure_builder();
//! let cpu = body.add_block();
//! let mem = body.add_block();
//! body.push_all(cpu, std::iter::repeat(Instruction::fp_mul()).take(40));
//! body.push_all(
//!     mem,
//!     std::iter::repeat(Instruction::load(MemRef::new(AccessPattern::Random, 64 * 1024 * 1024)))
//!         .take(40),
//! );
//! body.terminate(cpu, Terminator::Jump(mem));
//! body.terminate(mem, Terminator::Exit);
//! builder.define_procedure(main, body)?;
//! let program = builder.build()?;
//!
//! let typing = assign_block_types(&program, &StaticTypingConfig::default());
//! let instrumented = instrument(&program, &typing, &MarkingConfig::basic_block(15, 0));
//! assert_eq!(instrumented.mark_count(), 1);
//! # Ok::<(), phase_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod config;
mod marks;
mod regions;
mod summarize;
mod transitions;

pub use config::{Granularity, MarkingConfig};
pub use marks::{
    instrument, instrument_with_regions, InstrumentedProgram, MarkId, MarkStats, PhaseMark,
    MARK_DECISION_INSTRUCTIONS, MARK_MONITOR_INSTRUCTIONS, MARK_SIZE_BYTES,
};
pub use regions::{nesting_weight, ProgramRegions, Region, RegionId, RegionKind, RegionMap};
pub use summarize::{
    dominant_type, loop_type_map, Dominant, LoopTypeEntry, LoopTypeMap, SectionWeight,
};
pub use transitions::{entry_phase_type, find_transitions, Transition};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InstrumentedProgram>();
        assert_send_sync::<MarkingConfig>();
        assert_send_sync::<PhaseMark>();
        assert_send_sync::<RegionMap>();
    }
}
