//! Phase types and the static block-typing analysis.
//!
//! A *phase type* (`π ∈ Π` in the paper) suggests similarity between the
//! expected behaviour of basic blocks given the same type — it is not a
//! concrete behaviour. The static analysis computes one type per
//! sufficiently-large basic block by clustering blocks in the feature space
//! of [`crate::BlockFeatures`] with k-means, mirroring Section II-A3.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use phase_ir::{Location, Program};

use crate::features::BlockFeatures;
use crate::kmeans::{kmeans, KMeansConfig};

/// A phase type: an opaque label meaning "blocks with this label are expected
/// to behave similarly at run time".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct PhaseType(pub u32);

impl PhaseType {
    /// The phase type as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PhaseType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "π{}", self.0)
    }
}

/// The result of block typing: a partial map from block locations to phase
/// types. Blocks below the size threshold stay untyped.
///
/// # Examples
///
/// ```
/// use phase_analysis::{BlockTyping, PhaseType};
/// use phase_ir::{BlockId, Location, ProcId};
///
/// let mut typing = BlockTyping::new(2);
/// let loc = Location::new(ProcId(0), BlockId(3));
/// typing.assign(loc, PhaseType(1));
/// assert_eq!(typing.type_of(loc), Some(PhaseType(1)));
/// assert_eq!(typing.typed_block_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockTyping {
    types: HashMap<Location, PhaseType>,
    num_types: usize,
}

impl BlockTyping {
    /// Creates an empty typing with the given number of phase types.
    pub fn new(num_types: usize) -> Self {
        Self {
            types: HashMap::new(),
            num_types,
        }
    }

    /// Number of distinct phase types the typing draws from.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Assigns a type to a block, returning the previous one if any.
    pub fn assign(&mut self, loc: Location, ty: PhaseType) -> Option<PhaseType> {
        self.types.insert(loc, ty)
    }

    /// The type of a block, if it was typed.
    pub fn type_of(&self, loc: Location) -> Option<PhaseType> {
        self.types.get(&loc).copied()
    }

    /// Number of typed blocks.
    pub fn typed_block_count(&self) -> usize {
        self.types.len()
    }

    /// Whether no block is typed.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterator over `(location, phase type)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Location, PhaseType)> + '_ {
        self.types.iter().map(|(l, t)| (*l, *t))
    }

    /// Every `(location, phase type)` pair sorted by location — the
    /// deterministic order serializers (e.g. the artifact store's on-disk
    /// spill) need, since the backing map iterates in unspecified order.
    pub fn sorted_entries(&self) -> Vec<(Location, PhaseType)> {
        let mut entries: Vec<(Location, PhaseType)> = self.iter().collect();
        entries.sort_by_key(|(loc, _)| (loc.proc.0, loc.block.0));
        entries
    }

    /// Locations assigned the given type.
    pub fn blocks_of_type(&self, ty: PhaseType) -> Vec<Location> {
        let mut blocks: Vec<Location> = self
            .types
            .iter()
            .filter(|(_, t)| **t == ty)
            .map(|(l, _)| *l)
            .collect();
        blocks.sort();
        blocks
    }

    /// Returns a copy with a fraction of blocks deliberately moved to a
    /// *different* type, reproducing the paper's clustering-error experiment
    /// (Figure 7): "a percentage of blocks were randomly selected and placed
    /// into the opposite cluster".
    ///
    /// # Panics
    ///
    /// Panics if `error_fraction` is not within `[0, 1]`.
    pub fn with_injected_error(&self, error_fraction: f64, seed: u64) -> BlockTyping {
        assert!(
            (0.0..=1.0).contains(&error_fraction),
            "error fraction {error_fraction} out of range"
        );
        let mut result = self.clone();
        if self.num_types < 2 || self.types.is_empty() {
            return result;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut locations: Vec<Location> = self.types.keys().copied().collect();
        locations.sort();
        locations.shuffle(&mut rng);
        let to_flip = ((locations.len() as f64) * error_fraction).round() as usize;
        for loc in locations.into_iter().take(to_flip) {
            let current = result.types[&loc];
            let offset = rng.gen_range(1..self.num_types as u32);
            let flipped = PhaseType((current.0 + offset) % self.num_types as u32);
            result.types.insert(loc, flipped);
        }
        result
    }

    /// Fraction of blocks typed identically in both typings, considering only
    /// blocks typed in `self`.
    pub fn agreement_with(&self, other: &BlockTyping) -> f64 {
        if self.types.is_empty() {
            return 1.0;
        }
        let matching = self
            .types
            .iter()
            .filter(|(loc, ty)| other.type_of(**loc) == Some(**ty))
            .count();
        matching as f64 / self.types.len() as f64
    }
}

/// Configuration of the static typing analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticTypingConfig {
    /// Blocks with fewer instructions than this are left untyped ("our first
    /// technique is to skip basic blocks with size below a configurable
    /// threshold").
    pub min_block_size: usize,
    /// Number of phase types (clusters). The paper uses one cluster per core
    /// type — two on its evaluation machine.
    pub num_types: usize,
    /// Seed for the k-means initialisation.
    pub seed: u64,
    /// Maximum k-means iterations.
    pub max_iterations: usize,
}

impl Default for StaticTypingConfig {
    fn default() -> Self {
        Self {
            min_block_size: 15,
            num_types: 2,
            seed: 0xC60_2011,
            max_iterations: 100,
        }
    }
}

/// Runs the static block-typing analysis over a whole program.
///
/// Blocks of at least `config.min_block_size` instructions are placed in the
/// two-dimensional feature space of [`BlockFeatures`] and clustered with
/// k-means into `config.num_types` phase types.
///
/// Cluster labels are canonicalised so that **lower-numbered phase types have
/// higher compute intensity** (they are the "CPU-bound-looking" clusters);
/// this makes typings comparable across programs and runs.
pub fn assign_block_types(program: &Program, config: &StaticTypingConfig) -> BlockTyping {
    let mut locations = Vec::new();
    let mut points = Vec::new();
    for (loc, block) in program.iter_blocks() {
        if block.instruction_count() < config.min_block_size {
            continue;
        }
        let features = BlockFeatures::of_block(block);
        locations.push(loc);
        points.push(features.point.as_array());
    }

    let mut typing = BlockTyping::new(config.num_types);
    if locations.is_empty() {
        return typing;
    }

    let clustering = kmeans(
        &points,
        KMeansConfig {
            k: config.num_types,
            max_iterations: config.max_iterations,
            seed: config.seed,
        },
    );

    // Canonical order: sort clusters by decreasing compute intensity of their
    // centroid, so PhaseType(0) is always the most CPU-bound cluster.
    let mut order: Vec<usize> = (0..clustering.cluster_count()).collect();
    order.sort_by(|a, b| clustering.centroids[*b][0].total_cmp(&clustering.centroids[*a][0]));
    let mut relabel = vec![0u32; clustering.cluster_count()];
    for (new_label, original) in order.into_iter().enumerate() {
        relabel[original] = new_label as u32;
    }

    for (loc, raw) in locations.into_iter().zip(clustering.assignments) {
        typing.assign(loc, PhaseType(relabel[raw]));
    }
    typing
}

/// Builds a typing from per-block IPC observations on two core kinds, the way
/// the paper's evaluation seeds its static analysis: "using the observed IPC,
/// we assign types to basic blocks. The difference in IPC between the core
/// types is compared to an IPC threshold to determine the typing".
///
/// Each profile entry is `(location, ipc_on_fast_cores, ipc_on_slow_cores)`.
/// On an AMP the slower clock wastes fewer cycles per stall, so memory-bound
/// code shows a markedly *higher* IPC on the slow cores; blocks whose
/// slow-core IPC exceeds their fast-core IPC by more than `ipc_threshold`
/// therefore get [`PhaseType`] 1 ("tolerates slow cores"), everything else
/// gets [`PhaseType`] 0 ("prefers fast cores").
pub fn typing_from_ipc_profiles(
    profiles: impl IntoIterator<Item = (Location, f64, f64)>,
    ipc_threshold: f64,
) -> BlockTyping {
    let mut typing = BlockTyping::new(2);
    for (loc, ipc_fast, ipc_slow) in profiles {
        let ty = if ipc_slow - ipc_fast > ipc_threshold {
            PhaseType(1)
        } else {
            PhaseType(0)
        };
        typing.assign(loc, ty);
    }
    typing
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_ir::{
        AccessPattern, BlockId, Instruction, MemRef, ProcId, ProgramBuilder, Terminator,
    };

    /// A program with clearly CPU-bound and clearly memory-bound large blocks,
    /// plus one tiny block that must stay untyped.
    fn polarized_program() -> Program {
        let mut builder = ProgramBuilder::new("polarized");
        let main = builder.declare_procedure("main");
        let mut body = builder.procedure_builder();
        let cpu1 = body.add_block();
        let cpu2 = body.add_block();
        let mem1 = body.add_block();
        let mem2 = body.add_block();
        let tiny = body.add_block();
        for b in [cpu1, cpu2] {
            body.push_all(b, std::iter::repeat_n(Instruction::fp_mul(), 30));
        }
        for b in [mem1, mem2] {
            let mem = MemRef::new(AccessPattern::Random, 128 * 1024 * 1024);
            body.push_all(b, std::iter::repeat_n(Instruction::load(mem), 30));
        }
        body.push(tiny, Instruction::int_alu());
        body.terminate(cpu1, Terminator::Jump(cpu2));
        body.terminate(cpu2, Terminator::Jump(mem1));
        body.terminate(mem1, Terminator::Jump(mem2));
        body.terminate(mem2, Terminator::Jump(tiny));
        body.terminate(tiny, Terminator::Exit);
        builder.define_procedure(main, body).unwrap();
        builder.build().unwrap()
    }

    fn loc(block: u32) -> Location {
        Location::new(ProcId(0), BlockId(block))
    }

    #[test]
    fn typing_separates_cpu_and_memory_blocks() {
        let program = polarized_program();
        let typing = assign_block_types(&program, &StaticTypingConfig::default());
        assert_eq!(typing.typed_block_count(), 4);
        assert_eq!(typing.type_of(loc(0)), typing.type_of(loc(1)));
        assert_eq!(typing.type_of(loc(2)), typing.type_of(loc(3)));
        assert_ne!(typing.type_of(loc(0)), typing.type_of(loc(2)));
        // Canonicalisation: the CPU-bound cluster is PhaseType(0).
        assert_eq!(typing.type_of(loc(0)), Some(PhaseType(0)));
        assert_eq!(typing.type_of(loc(2)), Some(PhaseType(1)));
    }

    #[test]
    fn small_blocks_stay_untyped() {
        let program = polarized_program();
        let typing = assign_block_types(&program, &StaticTypingConfig::default());
        assert_eq!(typing.type_of(loc(4)), None);
    }

    #[test]
    fn raising_min_size_types_fewer_blocks() {
        let program = polarized_program();
        let small = assign_block_types(
            &program,
            &StaticTypingConfig {
                min_block_size: 1,
                ..Default::default()
            },
        );
        let large = assign_block_types(
            &program,
            &StaticTypingConfig {
                min_block_size: 60,
                ..Default::default()
            },
        );
        assert!(small.typed_block_count() > large.typed_block_count());
        assert_eq!(large.typed_block_count(), 0);
    }

    #[test]
    fn error_injection_flips_requested_fraction() {
        let program = polarized_program();
        let typing = assign_block_types(&program, &StaticTypingConfig::default());
        let with_error = typing.with_injected_error(0.5, 99);
        let agreement = typing.agreement_with(&with_error);
        assert!((agreement - 0.5).abs() < 1e-9, "agreement {agreement}");
        // Zero error keeps everything.
        assert_eq!(
            typing.agreement_with(&typing.with_injected_error(0.0, 1)),
            1.0
        );
        // Full error flips everything (with two types).
        assert_eq!(
            typing.agreement_with(&typing.with_injected_error(1.0, 1)),
            0.0
        );
    }

    #[test]
    fn error_injection_is_deterministic_per_seed() {
        let program = polarized_program();
        let typing = assign_block_types(&program, &StaticTypingConfig::default());
        assert_eq!(
            typing.with_injected_error(0.25, 5),
            typing.with_injected_error(0.25, 5)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn error_injection_rejects_bad_fraction() {
        let typing = BlockTyping::new(2);
        let _ = typing.with_injected_error(1.5, 0);
    }

    #[test]
    fn profile_based_typing_uses_threshold() {
        let profiles = vec![
            // CPU-bound: nearly identical IPC on both kinds.
            (loc(0), 0.95, 0.97),
            // Memory-bound: much higher IPC on the slow cores.
            (loc(1), 0.40, 0.80),
        ];
        let typing = typing_from_ipc_profiles(profiles, 0.2);
        assert_eq!(typing.type_of(loc(0)), Some(PhaseType(0)));
        assert_eq!(typing.type_of(loc(1)), Some(PhaseType(1)));
    }

    #[test]
    fn blocks_of_type_lists_sorted_locations() {
        let mut typing = BlockTyping::new(2);
        typing.assign(loc(3), PhaseType(0));
        typing.assign(loc(1), PhaseType(0));
        typing.assign(loc(2), PhaseType(1));
        assert_eq!(typing.blocks_of_type(PhaseType(0)), vec![loc(1), loc(3)]);
        assert_eq!(typing.blocks_of_type(PhaseType(1)), vec![loc(2)]);
    }

    #[test]
    fn empty_typing_has_full_agreement_with_anything() {
        let a = BlockTyping::new(2);
        let b = BlockTyping::new(2);
        assert_eq!(a.agreement_with(&b), 1.0);
        assert!(a.is_empty());
    }

    #[test]
    fn phase_type_display() {
        assert_eq!(format!("{}", PhaseType(1)), "π1");
    }
}
