//! Seeded k-means clustering (MacQueen 1967), used to group basic blocks by
//! their static features into phase types.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of a k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Seed for centroid initialisation (k-means++ style), making runs
    /// reproducible.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iterations: 100,
            seed: 0xC60_2011,
        }
    }
}

/// Result of clustering: one centroid per cluster and one assignment per
/// input point.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centroids.
    pub centroids: Vec<[f64; 2]>,
    /// For each input point, the index of the centroid it belongs to.
    pub assignments: Vec<usize>,
    /// Number of Lloyd iterations actually performed.
    pub iterations: usize,
    /// The number of clusters actually produced: `min(config.k, points.len())`
    /// (zero for an empty input). Requesting more clusters than points would
    /// otherwise manufacture degenerate duplicate centroids.
    pub effective_k: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.centroids.len()
    }

    /// Number of points assigned to the given cluster.
    pub fn cluster_size(&self, cluster: usize) -> usize {
        self.assignments.iter().filter(|a| **a == cluster).count()
    }

    /// Total within-cluster sum of squared distances for the given points.
    pub fn inertia(&self, points: &[[f64; 2]]) -> f64 {
        points
            .iter()
            .zip(&self.assignments)
            .map(|(p, &a)| squared_distance(*p, self.centroids[a]))
            .sum()
    }
}

fn squared_distance(a: [f64; 2], b: [f64; 2]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    dx * dx + dy * dy
}

/// Runs k-means over two-dimensional points.
///
/// Initialisation follows k-means++: the first centroid is a uniformly random
/// point, subsequent centroids are drawn with probability proportional to the
/// squared distance from the nearest already-chosen centroid.
///
/// # Panics
///
/// Panics if `config.k` is zero.
///
/// # Examples
///
/// ```
/// use phase_analysis::{kmeans, KMeansConfig};
///
/// let points = vec![[0.0, 0.0], [0.1, 0.0], [1.0, 1.0], [0.9, 1.0]];
/// let clustering = kmeans(&points, KMeansConfig { k: 2, ..Default::default() });
/// assert_eq!(clustering.assignments[0], clustering.assignments[1]);
/// assert_eq!(clustering.assignments[2], clustering.assignments[3]);
/// assert_ne!(clustering.assignments[0], clustering.assignments[2]);
/// ```
pub fn kmeans(points: &[[f64; 2]], config: KMeansConfig) -> Clustering {
    assert!(config.k > 0, "k-means needs at least one cluster");
    if points.is_empty() {
        return Clustering {
            centroids: Vec::new(),
            assignments: Vec::new(),
            iterations: 0,
            effective_k: 0,
        };
    }

    // More clusters than points would leave some clusters permanently empty;
    // clamp instead of silently producing degenerate duplicate centroids.
    let effective_k = config.k.min(points.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = initial_centroids(points, effective_k, &mut rng);
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    squared_distance(*p, **a).total_cmp(&squared_distance(*p, **b))
                })
                .map(|(idx, _)| idx)
                .expect("at least one centroid");
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![[0.0f64; 2]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &a) in points.iter().zip(&assignments) {
            sums[a][0] += p[0];
            sums[a][1] += p[1];
            counts[a] += 1;
        }
        for (cluster, (sum, count)) in sums.iter().zip(&counts).enumerate() {
            if *count > 0 {
                centroids[cluster] = [sum[0] / *count as f64, sum[1] / *count as f64];
            } else {
                // Re-seed an empty cluster on the point farthest from its
                // current centroid — the standard deterministic repair, which
                // keeps all k clusters alive without a coin flip. Coincident
                // inputs (zero spread) are left alone: splitting a point off
                // an identical twin would not improve anything.
                let farthest = points
                    .iter()
                    .enumerate()
                    .max_by(|(i, p), (j, q)| {
                        squared_distance(**p, centroids[assignments[*i]])
                            .total_cmp(&squared_distance(**q, centroids[assignments[*j]]))
                    })
                    .map(|(i, _)| i)
                    .expect("points is non-empty");
                if squared_distance(points[farthest], centroids[assignments[farthest]])
                    > f64::EPSILON
                {
                    centroids[cluster] = points[farthest];
                    assignments[farthest] = cluster;
                    changed = true;
                }
            }
        }
        if !changed && iterations > 1 {
            break;
        }
    }

    Clustering {
        centroids,
        assignments,
        iterations,
        effective_k,
    }
}

fn initial_centroids(points: &[[f64; 2]], k: usize, rng: &mut StdRng) -> Vec<[f64; 2]> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(*points.choose(rng).expect("points is non-empty"));
    while centroids.len() < k {
        let weights: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| squared_distance(*p, *c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= f64::EPSILON {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(centroids[0]);
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(points[chosen]);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<[f64; 2]> {
        let mut points = Vec::new();
        for i in 0..20 {
            let jitter = i as f64 * 0.001;
            points.push([0.05 + jitter, 0.1 - jitter]);
            points.push([0.9 - jitter, 0.8 + jitter]);
        }
        points
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let points = two_blobs();
        let clustering = kmeans(&points, KMeansConfig::default());
        // All even indices together, all odd indices together, and apart.
        let a = clustering.assignments[0];
        let b = clustering.assignments[1];
        assert_ne!(a, b);
        for (i, &assignment) in clustering.assignments.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(assignment, a);
            } else {
                assert_eq!(assignment, b);
            }
        }
    }

    #[test]
    fn is_deterministic_for_a_fixed_seed() {
        let points = two_blobs();
        let c1 = kmeans(
            &points,
            KMeansConfig {
                seed: 7,
                ..Default::default()
            },
        );
        let c2 = kmeans(
            &points,
            KMeansConfig {
                seed: 7,
                ..Default::default()
            },
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn clamps_k_to_the_point_count() {
        let points = vec![[0.5, 0.5]];
        let clustering = kmeans(
            &points,
            KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(clustering.effective_k, 1);
        assert_eq!(clustering.cluster_count(), 1);
        assert_eq!(clustering.assignments, vec![0]);
    }

    #[test]
    fn handles_empty_input() {
        let clustering = kmeans(&[], KMeansConfig::default());
        assert!(clustering.assignments.is_empty());
        assert!(clustering.centroids.is_empty());
        assert_eq!(clustering.iterations, 0);
        assert_eq!(clustering.effective_k, 0);
    }

    #[test]
    fn effective_k_matches_requested_k_when_points_suffice() {
        let clustering = kmeans(&two_blobs(), KMeansConfig::default());
        assert_eq!(clustering.effective_k, 2);
        assert_eq!(clustering.cluster_count(), 2);
    }

    #[test]
    fn every_cluster_stays_alive_on_skewed_input() {
        // One far outlier plus a tight blob: without empty-cluster repair a
        // k=3 run can converge with a dead centroid.
        let mut points = vec![[100.0, 100.0]];
        for i in 0..12 {
            points.push([0.001 * i as f64, 0.0]);
        }
        let clustering = kmeans(
            &points,
            KMeansConfig {
                k: 3,
                ..Default::default()
            },
        );
        assert_eq!(clustering.effective_k, 3);
        for cluster in 0..clustering.cluster_count() {
            assert!(
                clustering.cluster_size(cluster) > 0,
                "cluster {cluster} is empty"
            );
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let points = two_blobs();
        let c1 = kmeans(
            &points,
            KMeansConfig {
                k: 1,
                ..Default::default()
            },
        );
        let c2 = kmeans(
            &points,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert!(c2.inertia(&points) < c1.inertia(&points));
    }

    #[test]
    fn cluster_sizes_sum_to_point_count() {
        let points = two_blobs();
        let clustering = kmeans(&points, KMeansConfig::default());
        let total: usize = (0..clustering.cluster_count())
            .map(|c| clustering.cluster_size(c))
            .sum();
        assert_eq!(total, points.len());
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_is_rejected() {
        let _ = kmeans(
            &[[0.0, 0.0]],
            KMeansConfig {
                k: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn identical_points_all_land_in_one_cluster() {
        let points = vec![[0.3, 0.3]; 10];
        let clustering = kmeans(
            &points,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        let first = clustering.assignments[0];
        assert!(clustering.assignments.iter().all(|&a| a == first));
    }
}
