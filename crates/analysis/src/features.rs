//! Static block features: instruction mix and estimated cache behaviour.
//!
//! The paper's proof-of-concept block-typing analysis "involves looking at a
//! combination of instruction types as well as a rough estimate of cache
//! behavior (computation based on reuse distances). Information describing
//! these two components are used to place blocks in a two dimensional space"
//! (Section II-A3). [`BlockFeatures`] is that two-dimensional point, plus the
//! raw ingredients it was computed from.

use phase_ir::{BasicBlock, InstrMix};
use serde::{Deserialize, Serialize};

/// A point in the paper's two-dimensional feature space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FeaturePoint {
    /// Compute intensity: fraction of the block's work that scales with core
    /// frequency (integer + floating-point arithmetic, weighted by latency).
    pub compute_intensity: f64,
    /// Memory stall expectation: how much of the block's time is expected to
    /// be spent waiting on the memory hierarchy (memory ratio scaled by the
    /// estimated miss likelihood derived from reuse distances).
    pub memory_intensity: f64,
}

impl FeaturePoint {
    /// Euclidean distance to another point.
    pub fn distance(&self, other: &FeaturePoint) -> f64 {
        let dx = self.compute_intensity - other.compute_intensity;
        let dy = self.memory_intensity - other.memory_intensity;
        (dx * dx + dy * dy).sqrt()
    }

    /// The point as a fixed-size array (used by the clustering code).
    pub fn as_array(&self) -> [f64; 2] {
        [self.compute_intensity, self.memory_intensity]
    }

    /// Builds a point from a fixed-size array.
    pub fn from_array(values: [f64; 2]) -> Self {
        Self {
            compute_intensity: values[0],
            memory_intensity: values[1],
        }
    }
}

/// Static features of one basic block.
///
/// # Examples
///
/// ```
/// use phase_analysis::BlockFeatures;
/// use phase_ir::{AccessPattern, BasicBlock, BlockId, Instruction, MemRef, Terminator};
///
/// let block = BasicBlock::new(
///     BlockId(0),
///     vec![
///         Instruction::int_alu(),
///         Instruction::load(MemRef::new(AccessPattern::Random, 32 * 1024 * 1024)),
///     ],
///     Terminator::Return,
/// );
/// let features = BlockFeatures::of_block(&block);
/// assert!(features.point.memory_intensity > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockFeatures {
    /// The two-dimensional clustering point.
    pub point: FeaturePoint,
    /// Fraction of instructions that access memory.
    pub memory_ratio: f64,
    /// Fraction of instructions that are floating-point arithmetic.
    pub fp_ratio: f64,
    /// Mean estimated reuse distance in bytes over the block's memory
    /// accesses (zero when the block makes no memory access).
    pub mean_reuse_distance: f64,
    /// Estimated probability that a memory access misses a cache of
    /// [`BlockFeatures::REFERENCE_CACHE_BYTES`] bytes.
    pub miss_likelihood: f64,
    /// Number of instructions in the block (terminator included).
    pub instruction_count: usize,
}

impl BlockFeatures {
    /// Reference cache capacity used for the *static* miss-likelihood
    /// estimate (the dynamic machine model uses the real cache sizes). This
    /// is a typical L2 allocation per core on the paper's machine.
    pub const REFERENCE_CACHE_BYTES: f64 = 2.0 * 1024.0 * 1024.0;

    /// Computes the features of a basic block.
    pub fn of_block(block: &BasicBlock) -> Self {
        Self::from_parts(
            &block.mix(),
            block_reuse_distances(block),
            block.instruction_count(),
        )
    }

    /// Computes features from an instruction mix and the reuse distances of
    /// the memory accesses performed per execution.
    pub fn from_parts(mix: &InstrMix, reuse_distances: Vec<f64>, instruction_count: usize) -> Self {
        let memory_ratio = mix.memory_ratio();
        let fp_ratio = mix.floating_point_ratio();
        let compute_ratio = mix.integer_ratio() + fp_ratio;

        let mean_reuse_distance = if reuse_distances.is_empty() {
            0.0
        } else {
            reuse_distances.iter().sum::<f64>() / reuse_distances.len() as f64
        };
        let miss_likelihood = if reuse_distances.is_empty() {
            0.0
        } else {
            reuse_distances
                .iter()
                .map(|d| miss_probability(*d, Self::REFERENCE_CACHE_BYTES))
                .sum::<f64>()
                / reuse_distances.len() as f64
        };

        let point = FeaturePoint {
            compute_intensity: compute_ratio,
            memory_intensity: memory_ratio * miss_likelihood,
        };
        Self {
            point,
            memory_ratio,
            fp_ratio,
            mean_reuse_distance,
            miss_likelihood,
            instruction_count,
        }
    }
}

/// Reuse distances (bytes) of every memory access in a block.
pub fn block_reuse_distances(block: &BasicBlock) -> Vec<f64> {
    block
        .mem_refs()
        .map(|m| m.estimated_reuse_distance())
        .collect()
}

/// Probability that an access with the given reuse distance misses a cache of
/// the given capacity.
///
/// Uses a smooth logistic transition around the capacity, matching the usual
/// reuse-distance/cache-capacity argument (Beyls & D'Hollander): accesses
/// whose reuse distance fits comfortably in the cache hit, accesses far beyond
/// it miss, with a gradual transition in between.
pub fn miss_probability(reuse_distance_bytes: f64, cache_bytes: f64) -> f64 {
    if reuse_distance_bytes <= 0.0 {
        return 0.0;
    }
    let ratio = reuse_distance_bytes / cache_bytes.max(1.0);
    // Logistic in log-space: 50% miss probability exactly at capacity,
    // saturating roughly one decade either side.
    let x = ratio.ln() / std::f64::consts::LN_10; // log10(ratio)
    1.0 / (1.0 + (-4.0 * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_ir::{AccessPattern, BlockId, InstrClass, Instruction, MemRef, Terminator};

    fn block_of(instrs: Vec<Instruction>) -> BasicBlock {
        BasicBlock::new(BlockId(0), instrs, Terminator::Return)
    }

    #[test]
    fn cpu_bound_block_has_high_compute_low_memory() {
        let block = block_of(vec![Instruction::int_alu(); 20]);
        let f = BlockFeatures::of_block(&block);
        assert!(f.point.compute_intensity > 0.9);
        assert_eq!(f.point.memory_intensity, 0.0);
        assert_eq!(f.mean_reuse_distance, 0.0);
    }

    #[test]
    fn memory_bound_block_has_high_memory_intensity() {
        let mem = MemRef::new(AccessPattern::Random, 256 * 1024 * 1024);
        let mut instrs = vec![Instruction::load(mem); 10];
        instrs.push(Instruction::int_alu());
        let block = block_of(instrs);
        let f = BlockFeatures::of_block(&block);
        assert!(f.point.memory_intensity > 0.5, "{f:?}");
        assert!(f.miss_likelihood > 0.9);
    }

    #[test]
    fn small_working_set_has_low_miss_likelihood() {
        let mem = MemRef::new(AccessPattern::Sequential, 16 * 1024);
        let block = block_of(vec![Instruction::load(mem); 10]);
        let f = BlockFeatures::of_block(&block);
        assert!(f.miss_likelihood < 0.1, "{f:?}");
        assert!(f.point.memory_intensity < 0.1);
    }

    #[test]
    fn miss_probability_is_monotone_in_reuse_distance() {
        let cache = 1024.0 * 1024.0;
        let mut last = 0.0;
        for exp in 10..30 {
            let d = (1u64 << exp) as f64;
            let p = miss_probability(d, cache);
            assert!(p >= last, "non-monotone at 2^{exp}");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn miss_probability_is_half_at_capacity() {
        let p = miss_probability(4.0 * 1024.0 * 1024.0, 4.0 * 1024.0 * 1024.0);
        assert!((p - 0.5).abs() < 1e-9);
        assert_eq!(miss_probability(0.0, 1024.0), 0.0);
    }

    #[test]
    fn feature_point_distance_is_metric_like() {
        let a = FeaturePoint {
            compute_intensity: 0.9,
            memory_intensity: 0.1,
        };
        let b = FeaturePoint {
            compute_intensity: 0.1,
            memory_intensity: 0.8,
        };
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.0);
        assert_eq!(FeaturePoint::from_array(a.as_array()), a);
    }

    #[test]
    fn fp_ratio_counts_only_floating_point() {
        let block = block_of(vec![
            Instruction::fp_mul(),
            Instruction::fp_add(),
            Instruction::int_alu(),
            Instruction::new(InstrClass::Nop),
        ]);
        let f = BlockFeatures::of_block(&block);
        assert!((f.fp_ratio - 2.0 / 5.0).abs() < 1e-9);
        assert_eq!(f.instruction_count, 5);
    }
}
