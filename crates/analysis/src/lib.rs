//! # phase-analysis
//!
//! The static block-typing half of phase-based tuning (Sondag & Rajan,
//! CGO 2011, Section II-A3): every sufficiently-large basic block is placed in
//! a two-dimensional feature space — instruction mix on one axis, an estimate
//! of cache behaviour derived from reuse distances on the other — and grouped
//! with k-means into *phase types*. Blocks sharing a phase type are expected
//! to exhibit similar runtime characteristics, which is what lets the dynamic
//! tuner monitor only a few representative sections per type.
//!
//! The crate also provides the clustering-error injection used by the paper's
//! Figure 7 robustness experiment and a profile-guided typing helper matching
//! the paper's evaluation setup.
//!
//! ## Example
//!
//! ```
//! use phase_analysis::{assign_block_types, StaticTypingConfig};
//! use phase_ir::{Instruction, ProgramBuilder, Terminator};
//!
//! let mut builder = ProgramBuilder::new("demo");
//! let main = builder.declare_procedure("main");
//! let mut body = builder.procedure_builder();
//! let block = body.add_block();
//! body.push_all(block, std::iter::repeat(Instruction::fp_mul()).take(20));
//! body.terminate(block, Terminator::Exit);
//! builder.define_procedure(main, body)?;
//! let program = builder.build()?;
//!
//! let typing = assign_block_types(&program, &StaticTypingConfig::default());
//! assert_eq!(typing.typed_block_count(), 1);
//! # Ok::<(), phase_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod features;
mod kmeans;
mod typing;

pub use features::{block_reuse_distances, miss_probability, BlockFeatures, FeaturePoint};
pub use kmeans::{kmeans, Clustering, KMeansConfig};
pub use typing::{
    assign_block_types, typing_from_ipc_profiles, BlockTyping, PhaseType, StaticTypingConfig,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BlockTyping>();
        assert_send_sync::<PhaseType>();
        assert_send_sync::<BlockFeatures>();
        assert_send_sync::<Clustering>();
    }
}
