//! Summary statistics: the quartile summaries behind the paper's box plots
//! (Figure 3) and simple comparison helpers.

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl SummaryStats {
    /// Computes the summary of a sample. Returns the zero summary for an
    /// empty sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<f64> = values.to_vec();
        // A total order even for NaN observations: they sort to the end
        // instead of panicking the summary mid-run.
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            count: sorted.len(),
            min: sorted[0],
            q1: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.5),
            q3: percentile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean,
        }
    }

    /// Interquartile range (`q3 - q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3}",
            self.count, self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

/// Linear-interpolated percentile of an already-sorted sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or the sample is empty.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let position = q * (sorted.len() - 1) as f64;
    let low = position.floor() as usize;
    let high = position.ceil() as usize;
    let fraction = position - low as f64;
    sorted[low] + (sorted[high] - sorted[low]) * fraction
}

/// Percentage change from `baseline` to `value`: positive when `value` is
/// larger. Returns zero when the baseline is zero.
pub fn percent_change(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (value - baseline) / baseline * 100.0
    }
}

/// Percentage *decrease* from `baseline` to `value`: positive when `value` is
/// smaller — the orientation the paper's Table 2 uses ("% decrease over
/// standard Linux", where an improvement is a positive number).
pub fn percent_decrease(baseline: f64, value: f64) -> f64 {
    -percent_change(baseline, value)
}

/// Arithmetic mean; zero for an empty sample.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean; zero for an empty sample.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|v| *v > 0.0),
        "geometric mean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = SummaryStats::of(&values);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = SummaryStats::of(&[3.0, 1.0, 2.0]);
        let b = SummaryStats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sample_gives_zero_summary() {
        assert_eq!(SummaryStats::of(&[]), SummaryStats::default());
    }

    #[test]
    fn single_value_summary() {
        let s = SummaryStats::of(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_quantile() {
        let _ = percentile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn percent_change_and_decrease_are_opposites() {
        assert_eq!(percent_change(100.0, 150.0), 50.0);
        assert_eq!(percent_decrease(100.0, 64.0), 36.0);
        assert_eq!(percent_change(0.0, 5.0), 0.0);
        assert!((percent_change(80.0, 60.0) + percent_decrease(80.0, 60.0)).abs() < 1e-12);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn display_is_compact() {
        let s = SummaryStats::of(&[1.0, 2.0]);
        let text = format!("{s}");
        assert!(text.contains("n=2"));
        assert!(text.contains("mean="));
    }
}
