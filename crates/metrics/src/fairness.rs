//! Fairness metrics for continuous job streams.
//!
//! The paper uses the flow and stretch metrics of Bender, Chakrabarti &
//! Muthukrishnan ("Flow and stretch metrics for scheduling continuous job
//! streams") plus the average process completion time (Section IV-D):
//!
//! * **flow** `F_j = C_j − a_j`: time from arrival to completion;
//! * **max-flow** `max_j F_j`: "if even one process is starving, this number
//!   will increase significantly";
//! * **stretch** `F_j / t_j` with `t_j` the processing time *in isolation*:
//!   "the largest slowdown of a job";
//! * **average process time**: mean flow over completed processes.

use serde::{Deserialize, Serialize};

use crate::stats::percent_decrease;

/// Timing of one completed process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessTiming {
    /// Arrival time (`a_j`) in nanoseconds.
    pub arrival_ns: f64,
    /// Completion time (`C_j`) in nanoseconds.
    pub completion_ns: f64,
    /// Processing time in isolation (`t_j`) in nanoseconds.
    pub isolated_ns: f64,
}

impl ProcessTiming {
    /// Flow time `F_j = C_j − a_j`.
    ///
    /// # Panics
    ///
    /// Panics if completion precedes arrival or the isolated time is not
    /// positive — both indicate corrupted measurements.
    pub fn flow_ns(&self) -> f64 {
        assert!(
            self.completion_ns >= self.arrival_ns,
            "completion {} precedes arrival {}",
            self.completion_ns,
            self.arrival_ns
        );
        self.completion_ns - self.arrival_ns
    }

    /// Stretch `F_j / t_j`.
    pub fn stretch(&self) -> f64 {
        assert!(self.isolated_ns > 0.0, "isolated time must be positive");
        self.flow_ns() / self.isolated_ns
    }
}

/// Fairness summary of one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Number of completed processes measured.
    pub completed: usize,
    /// `max_j F_j` in nanoseconds.
    pub max_flow_ns: f64,
    /// `max_j F_j / t_j`.
    pub max_stretch: f64,
    /// Mean flow (average process time) in nanoseconds.
    pub avg_process_time_ns: f64,
    /// Mean stretch.
    pub avg_stretch: f64,
}

impl FairnessReport {
    /// Computes the report from per-process timings. Returns the zero report
    /// when no process completed.
    pub fn from_timings(timings: &[ProcessTiming]) -> Self {
        if timings.is_empty() {
            return Self::default();
        }
        let flows: Vec<f64> = timings.iter().map(ProcessTiming::flow_ns).collect();
        let stretches: Vec<f64> = timings.iter().map(ProcessTiming::stretch).collect();
        Self {
            completed: timings.len(),
            max_flow_ns: flows.iter().copied().fold(f64::MIN, f64::max),
            max_stretch: stretches.iter().copied().fold(f64::MIN, f64::max),
            avg_process_time_ns: flows.iter().sum::<f64>() / flows.len() as f64,
            avg_stretch: stretches.iter().sum::<f64>() / stretches.len() as f64,
        }
    }
}

/// Comparison of a technique against a baseline, in the orientation of the
/// paper's Table 2: positive numbers are improvements (decreases).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FairnessComparison {
    /// Percent decrease in max-flow relative to the baseline.
    pub max_flow_decrease_pct: f64,
    /// Percent decrease in max-stretch relative to the baseline.
    pub max_stretch_decrease_pct: f64,
    /// Percent decrease in average process time relative to the baseline.
    pub avg_time_decrease_pct: f64,
}

impl FairnessComparison {
    /// Compares a technique's fairness report against a baseline report.
    pub fn against_baseline(baseline: &FairnessReport, technique: &FairnessReport) -> Self {
        Self {
            max_flow_decrease_pct: percent_decrease(baseline.max_flow_ns, technique.max_flow_ns),
            max_stretch_decrease_pct: percent_decrease(baseline.max_stretch, technique.max_stretch),
            avg_time_decrease_pct: percent_decrease(
                baseline.avg_process_time_ns,
                technique.avg_process_time_ns,
            ),
        }
    }

    /// Whether every metric improved (all decreases positive).
    pub fn improves_everywhere(&self) -> bool {
        self.max_flow_decrease_pct > 0.0
            && self.max_stretch_decrease_pct > 0.0
            && self.avg_time_decrease_pct > 0.0
    }
}

impl std::fmt::Display for FairnessComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max-flow {:+.2}% max-stretch {:+.2}% avg-time {:+.2}%",
            self.max_flow_decrease_pct, self.max_stretch_decrease_pct, self.avg_time_decrease_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(arrival: f64, completion: f64, isolated: f64) -> ProcessTiming {
        ProcessTiming {
            arrival_ns: arrival,
            completion_ns: completion,
            isolated_ns: isolated,
        }
    }

    #[test]
    fn flow_and_stretch_of_one_process() {
        let t = timing(100.0, 400.0, 100.0);
        assert_eq!(t.flow_ns(), 300.0);
        assert_eq!(t.stretch(), 3.0);
    }

    #[test]
    #[should_panic(expected = "precedes arrival")]
    fn negative_flow_is_rejected() {
        let _ = timing(400.0, 100.0, 50.0).flow_ns();
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_isolated_time_is_rejected() {
        let _ = timing(0.0, 100.0, 0.0).stretch();
    }

    #[test]
    fn report_takes_maxima_and_means() {
        let timings = [
            timing(0.0, 100.0, 50.0),    // flow 100, stretch 2
            timing(0.0, 300.0, 100.0),   // flow 300, stretch 3
            timing(100.0, 200.0, 100.0), // flow 100, stretch 1
        ];
        let report = FairnessReport::from_timings(&timings);
        assert_eq!(report.completed, 3);
        assert_eq!(report.max_flow_ns, 300.0);
        assert_eq!(report.max_stretch, 3.0);
        assert!((report.avg_process_time_ns - 500.0 / 3.0).abs() < 1e-9);
        assert!((report.avg_stretch - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_zero() {
        assert_eq!(FairnessReport::from_timings(&[]), FairnessReport::default());
    }

    #[test]
    fn comparison_is_oriented_like_table2() {
        let baseline = FairnessReport {
            completed: 10,
            max_flow_ns: 1000.0,
            max_stretch: 10.0,
            avg_process_time_ns: 500.0,
            avg_stretch: 5.0,
        };
        let technique = FairnessReport {
            completed: 10,
            max_flow_ns: 880.0,         // 12% better
            max_stretch: 8.0,           // 20% better
            avg_process_time_ns: 320.0, // 36% better
            avg_stretch: 4.0,
        };
        let cmp = FairnessComparison::against_baseline(&baseline, &technique);
        assert!((cmp.max_flow_decrease_pct - 12.0).abs() < 1e-9);
        assert!((cmp.max_stretch_decrease_pct - 20.0).abs() < 1e-9);
        assert!((cmp.avg_time_decrease_pct - 36.0).abs() < 1e-9);
        assert!(cmp.improves_everywhere());
        // A regression shows up as a negative decrease.
        let worse = FairnessReport {
            max_flow_ns: 1200.0,
            ..technique
        };
        let cmp = FairnessComparison::against_baseline(&baseline, &worse);
        assert!(cmp.max_flow_decrease_pct < 0.0);
        assert!(!cmp.improves_everywhere());
    }

    #[test]
    fn comparison_display_shows_signs() {
        let cmp = FairnessComparison {
            max_flow_decrease_pct: 12.04,
            max_stretch_decrease_pct: 20.41,
            avg_time_decrease_pct: 35.95,
        };
        let text = format!("{cmp}");
        assert!(text.contains("+12.04%"));
        assert!(text.contains("+35.95%"));
    }
}
