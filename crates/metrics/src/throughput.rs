//! Throughput measurement and comparison.
//!
//! The paper measures throughput "in terms of instructions committed over a
//! time interval (0% representing no improvement)" (Section IV-C), reading
//! the first 400 seconds of each workload. Here throughput is a count of
//! committed instructions per fixed-width window; comparisons report the
//! percentage improvement of a technique over the baseline for the same
//! prefix of windows.

use serde::{Deserialize, Serialize};

use crate::stats::percent_change;

/// Instructions committed per fixed-width window of one run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ThroughputSeries {
    windows: Vec<u64>,
    window_ns: u64,
}

impl ThroughputSeries {
    /// Creates a series from per-window instruction counts.
    pub fn new(windows: Vec<u64>, window_ns: u64) -> Self {
        Self { windows, window_ns }
    }

    /// The per-window instruction counts.
    pub fn windows(&self) -> &[u64] {
        &self.windows
    }

    /// Width of one window in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Total instructions committed over the whole series.
    pub fn total_instructions(&self) -> u64 {
        self.windows.iter().sum()
    }

    /// Instructions committed during the first `duration_ns` nanoseconds
    /// (whole windows only).
    pub fn instructions_before(&self, duration_ns: u64) -> u64 {
        if self.window_ns == 0 {
            return 0;
        }
        let count = (duration_ns / self.window_ns) as usize;
        self.windows.iter().take(count).sum()
    }

    /// Mean instructions per second over the measured prefix.
    pub fn instructions_per_second(&self) -> f64 {
        let duration_ns = self.window_ns as f64 * self.windows.len() as f64;
        if duration_ns <= 0.0 {
            0.0
        } else {
            self.total_instructions() as f64 / (duration_ns * 1e-9)
        }
    }
}

/// Throughput improvement of a technique over a baseline, measured over the
/// same time prefix.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ThroughputComparison {
    /// Instructions committed by the baseline in the measured prefix.
    pub baseline_instructions: u64,
    /// Instructions committed by the technique in the measured prefix.
    pub technique_instructions: u64,
    /// Percent improvement (positive means the technique committed more).
    pub improvement_pct: f64,
}

impl ThroughputComparison {
    /// Compares two series over the first `duration_ns` nanoseconds.
    pub fn over_prefix(
        baseline: &ThroughputSeries,
        technique: &ThroughputSeries,
        duration_ns: u64,
    ) -> Self {
        let baseline_instructions = baseline.instructions_before(duration_ns);
        let technique_instructions = technique.instructions_before(duration_ns);
        Self {
            baseline_instructions,
            technique_instructions,
            improvement_pct: percent_change(
                baseline_instructions as f64,
                technique_instructions as f64,
            ),
        }
    }

    /// Compares two raw instruction totals.
    pub fn from_totals(baseline_instructions: u64, technique_instructions: u64) -> Self {
        Self {
            baseline_instructions,
            technique_instructions,
            improvement_pct: percent_change(
                baseline_instructions as f64,
                technique_instructions as f64,
            ),
        }
    }
}

impl std::fmt::Display for ThroughputComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vs {} instructions ({:+.2}%)",
            self.technique_instructions, self.baseline_instructions, self.improvement_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_prefixes() {
        let series = ThroughputSeries::new(vec![100, 200, 300], 10);
        assert_eq!(series.total_instructions(), 600);
        assert_eq!(series.instructions_before(20), 300);
        assert_eq!(series.instructions_before(5), 0);
        assert_eq!(series.instructions_before(1000), 600);
        assert_eq!(series.window_ns(), 10);
        assert_eq!(series.windows().len(), 3);
    }

    #[test]
    fn instructions_per_second() {
        // 1000 instructions over 2 windows of 1 ms = 500k instructions/s.
        let series = ThroughputSeries::new(vec![400, 600], 1_000_000);
        assert!((series.instructions_per_second() - 500_000.0).abs() < 1e-6);
        assert_eq!(ThroughputSeries::default().instructions_per_second(), 0.0);
    }

    #[test]
    fn comparison_over_prefix() {
        let baseline = ThroughputSeries::new(vec![100, 100, 100], 10);
        let technique = ThroughputSeries::new(vec![120, 130, 50], 10);
        let cmp = ThroughputComparison::over_prefix(&baseline, &technique, 20);
        assert_eq!(cmp.baseline_instructions, 200);
        assert_eq!(cmp.technique_instructions, 250);
        assert!((cmp.improvement_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn comparison_from_totals_handles_regressions() {
        let cmp = ThroughputComparison::from_totals(1000, 900);
        assert!(cmp.improvement_pct < 0.0);
        let text = format!("{cmp}");
        assert!(text.contains("900"));
        assert!(text.contains('%'));
    }

    #[test]
    fn zero_baseline_gives_zero_improvement() {
        let cmp = ThroughputComparison::from_totals(0, 500);
        assert_eq!(cmp.improvement_pct, 0.0);
    }
}
