//! # phase-metrics
//!
//! The measurement vocabulary of the phase-based-tuning evaluation (Sondag &
//! Rajan, CGO 2011, Section IV):
//!
//! * [`SummaryStats`] — quartile summaries for the space/time-overhead box
//!   plots (Figure 3);
//! * [`ThroughputSeries`] / [`ThroughputComparison`] — instructions committed
//!   per window and percentage improvement over the baseline (Figures 6–7);
//! * [`ProcessTiming`] / [`FairnessReport`] / [`FairnessComparison`] — the
//!   flow/stretch fairness metrics of Bender et al. and the "% decrease over
//!   standard Linux" orientation of Table 2;
//! * [`LogHistogram`] — the fixed-bucket log-scale latency histogram the
//!   serving stack records per-request latencies into (p50/p99/p999 with
//!   bounded relative error);
//! * assorted helpers ([`percent_decrease`], [`geometric_mean`], ...).
//!
//! The crate is deliberately free of simulation dependencies so it can be
//! unit-tested against hand-computed values.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod fairness;
mod histogram;
mod stats;
mod throughput;

pub use fairness::{FairnessComparison, FairnessReport, ProcessTiming};
pub use histogram::LogHistogram;
pub use stats::{
    geometric_mean, mean, percent_change, percent_decrease, percentile_sorted, SummaryStats,
};
pub use throughput::{ThroughputComparison, ThroughputSeries};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SummaryStats>();
        assert_send_sync::<FairnessReport>();
        assert_send_sync::<ThroughputSeries>();
        assert_send_sync::<LogHistogram>();
    }
}
