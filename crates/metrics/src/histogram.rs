//! A fixed-bucket log-scale latency histogram.
//!
//! The serving stack records one observation per request into a
//! [`LogHistogram`] and reports p50/p99/p999 from its buckets. The layout is
//! HDR-style: values are bucketed by their floor-log2 octave, each octave
//! split into `2^PRECISION_BITS` linear sub-buckets, so the relative
//! quantization error is bounded by `2^-PRECISION_BITS` (~3%) across the
//! whole `u64` range — microseconds and minutes share one fixed array, no
//! reallocation, no per-recording branching beyond an `ilog2`.

use serde::{Deserialize, Serialize};

/// Sub-bucket precision: each power-of-two octave is split into
/// `2^PRECISION_BITS` linear buckets, bounding relative error at
/// `2^-PRECISION_BITS` (~3.1%).
const PRECISION_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << PRECISION_BITS;
/// Values below `2^PRECISION_BITS` map one-to-one onto the first
/// `SUB_BUCKETS` buckets; every octave above contributes `SUB_BUCKETS` more.
const BUCKETS: usize = SUB_BUCKETS * (64 - PRECISION_BITS as usize + 1);

/// A fixed-bucket log-scale histogram over `u64` observations (the serving
/// stack records nanoseconds). Recording is O(1), the footprint is a fixed
/// ~15 KB, and quantiles are read back with bounded (~3%) relative error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= PRECISION_BITS here
    let shift = octave - PRECISION_BITS;
    let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
    (octave - PRECISION_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// The smallest value that maps to `index` (the bucket's lower bound).
fn bucket_floor(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let octave = (index / SUB_BUCKETS - 1) as u32 + PRECISION_BITS;
    let sub = (index % SUB_BUCKETS) as u64;
    (1u64 << octave) + (sub << (octave - PRECISION_BITS))
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation; zero when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation; zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the observations; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded observations: the
    /// lower bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`, clamped into `[min, max]` so quantization never
    /// reports a value outside the observed range. Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return bucket_floor(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The full cumulative distribution: one `(bucket_upper, fraction)`
    /// point per non-empty bucket, in ascending value order, where
    /// `bucket_upper` is the largest value the bucket can hold (clamped to
    /// `max` on the last point so the curve never extends past the observed
    /// range) and `fraction` is the cumulative share of observations at or
    /// below it. The final point's fraction is exactly `1.0`; an empty
    /// histogram yields an empty curve.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut curve = Vec::new();
        if self.count == 0 {
            return curve;
        }
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            seen += bucket;
            let upper = if index + 1 < BUCKETS {
                bucket_floor(index + 1) - 1
            } else {
                u64::MAX
            };
            curve.push((upper.min(self.max), seen as f64 / self.count as f64));
            if seen == self.count {
                break;
            }
        }
        curve
    }

    /// Convenience: the 50th/99th/99.9th percentiles as a tuple.
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
        // Every value below 2^PRECISION_BITS has its own bucket.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LogHistogram::new();
        // A deterministic spread across five orders of magnitude.
        let mut values = Vec::new();
        let mut v: u64 = 17;
        for _ in 0..10_000 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sample = 1_000 + v % 100_000_000; // 1µs .. 100ms in ns
            values.push(sample);
            h.record(sample);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact =
                values[((q * (values.len() - 1) as f64).round() as usize).min(values.len() - 1)];
            let approx = h.quantile(q);
            let error = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                error <= 0.05,
                "q={q}: approx {approx} vs exact {exact} (error {error:.4})"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert!(h.min() >= 1_000 && h.max() < 100_001_000);
    }

    #[test]
    fn bucket_floor_inverts_bucket_index() {
        for value in [
            0,
            1,
            31,
            32,
            33,
            1_000,
            65_535,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let index = bucket_index(value);
            let floor = bucket_floor(index);
            assert!(floor <= value, "floor {floor} above value {value}");
            assert_eq!(bucket_index(floor), index, "floor maps back to its bucket");
        }
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [10u64, 100, 1_000, 10_000] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 50_000, 500_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.mean(), both.mean());
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_q() {
        let _ = LogHistogram::new().quantile(1.5);
    }

    #[test]
    fn cdf_matches_hand_computed_distribution() {
        // Values below 2^PRECISION_BITS land in exact unit buckets, so the
        // whole curve can be written down by hand.
        let mut h = LogHistogram::new();
        for v in [1u64, 1, 2, 5, 5, 5] {
            h.record(v);
        }
        assert_eq!(
            h.cdf(),
            vec![(1, 2.0 / 6.0), (2, 3.0 / 6.0), (5, 1.0)],
            "unit buckets: upper bound is the value itself"
        );

        // A coarser bucket: 1000 falls in [992, 1023] at PRECISION_BITS=5,
        // so its cumulative point sits at the bucket's upper bound — except
        // on the last point, which clamps to the observed max.
        let mut h = LogHistogram::new();
        h.record(3);
        h.record(1_000);
        assert_eq!(h.cdf(), vec![(3, 0.5), (1_000, 1.0)]);
        h.record(1_005);
        assert_eq!(
            h.cdf(),
            vec![(3, 1.0 / 3.0), (1_005, 1.0)],
            "same [992, 1007] bucket: one point, clamped to max"
        );

        assert!(LogHistogram::new().cdf().is_empty());
    }

    #[test]
    fn cdf_is_monotonic_and_ends_at_one() {
        let mut h = LogHistogram::new();
        let mut v: u64 = 99;
        for _ in 0..5_000 {
            v = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(v % 10_000_000);
        }
        let curve = h.cdf();
        assert!(!curve.is_empty());
        for window in curve.windows(2) {
            assert!(window[0].0 < window[1].0, "uppers strictly increase");
            assert!(window[0].1 < window[1].1, "fractions strictly increase");
        }
        assert_eq!(curve.last().expect("non-empty").1, 1.0);
        assert!(curve.last().expect("non-empty").0 <= h.max());
    }

    #[test]
    fn merged_cdf_matches_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [1u64, 7, 300, 9_000, 1 << 30] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 7, 450_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.cdf(), both.cdf());
    }
}
