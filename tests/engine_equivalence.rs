//! Golden-equivalence tests: the event-driven engine must reproduce the
//! round-based reference engine's results on real workloads.
//!
//! Five seeded workloads cover the interesting regimes — the paper's dense
//! Table 1 catalogue, the mixed CPU/memory scenario family (heavy
//! phase-transition traffic), a bursty-arrival workload (the idle
//! stretches the event engine skips), an online-policy run with interval
//! sampling, and a larger bursty workload under online sampling (batched
//! same-timestamp arrivals interleaved with sample ticks on the bucket
//! queue's fast path). Aggregate metrics (completion times,
//! switch counts, fairness) must agree within 1e-9; in practice they are
//! bit-identical because both engines drive the same scheduling primitives.

use std::collections::HashMap;

use phase_tuning::substrate::metrics::{FairnessReport, ProcessTiming};
use phase_tuning::substrate::sched::{EngineKind, JobSpec, SimConfig, SimResult};
use phase_tuning::substrate::workload::{Catalog, Workload};
use phase_tuning::{
    baseline_catalog, build_slots, instrument_catalog, CellSpec, Driver, ExperimentPlan,
    PipelineConfig, Policy,
};

const TOLERANCE: f64 = 1e-9;

fn run_engine(slots: Vec<Vec<JobSpec>>, policy: Policy, engine: EngineKind) -> SimResult {
    let machine = phase_tuning::substrate::amp::MachineSpec::core2_quad_amp();
    let sim = SimConfig {
        horizon_ns: Some(6_000_000.0),
        engine,
        ..SimConfig::default()
    };
    let mut plan = ExperimentPlan::new();
    plan.push(CellSpec {
        group: "golden".into(),
        label: format!("golden-{engine}"),
        machine,
        slots,
        policy,
        sim,
    });
    Driver::new(1).run(plan).cells.remove(0).result
}

fn assert_close(label: &str, a: f64, b: f64) {
    assert!(
        (a - b).abs() <= TOLERANCE,
        "{label}: round-based {a} vs event-driven {b}"
    );
}

fn fairness(result: &SimResult) -> FairnessReport {
    // Stretch denominators do not matter for engine equivalence; use a
    // constant isolated runtime per process.
    let timings: Vec<ProcessTiming> = result
        .completed()
        .map(|record| ProcessTiming {
            arrival_ns: record.arrival_ns,
            completion_ns: record.completion_ns.expect("completed"),
            isolated_ns: 1_000_000.0,
        })
        .collect();
    FairnessReport::from_timings(&timings)
}

fn assert_equivalent(round: &SimResult, event: &SimResult) {
    assert_eq!(round.records.len(), event.records.len(), "process count");
    let mut completions: HashMap<&str, usize> = HashMap::new();
    for (r, e) in round.records.iter().zip(event.records.iter()) {
        assert_eq!(r.pid, e.pid);
        assert_eq!(r.name, e.name);
        assert_eq!(r.slot, e.slot);
        assert_close(&format!("{} arrival", r.name), r.arrival_ns, e.arrival_ns);
        assert_eq!(
            r.completion_ns.is_some(),
            e.completion_ns.is_some(),
            "{} completion presence",
            r.name
        );
        if let (Some(rc), Some(ec)) = (r.completion_ns, e.completion_ns) {
            assert_close(&format!("{} completion", r.name), rc, ec);
            *completions.entry(r.name.as_str()).or_default() += 1;
        }
        assert_eq!(r.stats.instructions, e.stats.instructions, "{}", r.name);
        assert_eq!(r.stats.core_switches, e.stats.core_switches, "{}", r.name);
        assert_eq!(r.stats.marks_executed, e.stats.marks_executed, "{}", r.name);
        assert_eq!(
            r.stats.balancer_migrations, e.stats.balancer_migrations,
            "{}",
            r.name
        );
        assert_close(
            &format!("{} cpu time", r.name),
            r.stats.cpu_time_ns,
            e.stats.cpu_time_ns,
        );
    }
    assert_eq!(round.total_instructions, event.total_instructions);
    assert_eq!(round.total_core_switches, event.total_core_switches);
    assert_eq!(round.total_marks_executed, event.total_marks_executed);
    assert_close("final time", round.final_time_ns, event.final_time_ns);
    assert_eq!(round.throughput_windows, event.throughput_windows);
    for (index, (r, e)) in round
        .core_busy_ns
        .iter()
        .zip(event.core_busy_ns.iter())
        .enumerate()
    {
        assert_close(&format!("core {index} busy"), *r, *e);
    }

    let round_fairness = fairness(round);
    let event_fairness = fairness(event);
    assert_close(
        "max flow",
        round_fairness.max_flow_ns,
        event_fairness.max_flow_ns,
    );
    assert_close(
        "max stretch",
        round_fairness.max_stretch,
        event_fairness.max_stretch,
    );
    assert_close(
        "avg process time",
        round_fairness.avg_process_time_ns,
        event_fairness.avg_process_time_ns,
    );
    assert!(
        !completions.is_empty(),
        "equivalence is vacuous without completed processes"
    );
}

fn machine() -> phase_tuning::substrate::amp::MachineSpec {
    phase_tuning::substrate::amp::MachineSpec::core2_quad_amp()
}

#[test]
fn engines_agree_on_the_standard_catalogue_workload() {
    let catalog = Catalog::standard(0.06, 1);
    let workload = Workload::random(&catalog, 6, 2, 1);
    let programs = instrument_catalog(&catalog, &machine(), &PipelineConfig::paper_best());
    let slots = build_slots(&workload, &catalog, &programs);
    let policy = Policy::Tuned(phase_tuning::substrate::runtime::TunerConfig::paper_table1());
    let round = run_engine(slots.clone(), policy, EngineKind::RoundBased);
    let event = run_engine(slots, policy, EngineKind::EventDriven);
    assert_equivalent(&round, &event);
    assert!(event.total_marks_executed > 0, "the tuner saw marks");
}

#[test]
fn engines_agree_on_the_mixed_scenario_family() {
    let catalog = Catalog::mixed(0.08, 2);
    let workload = Workload::random(&catalog, 5, 2, 2);
    let programs = instrument_catalog(&catalog, &machine(), &PipelineConfig::paper_best());
    let slots = build_slots(&workload, &catalog, &programs);
    let policy = Policy::Tuned(phase_tuning::substrate::runtime::TunerConfig::paper_table1());
    let round = run_engine(slots.clone(), policy, EngineKind::RoundBased);
    let event = run_engine(slots, policy, EngineKind::EventDriven);
    assert_equivalent(&round, &event);
}

#[test]
fn engines_agree_under_the_online_policy_with_interval_sampling() {
    use phase_tuning::substrate::online::OnlineConfig;
    // An unmarkable drifting workload under Policy::Online: both engines must
    // fire the SampleInterval tick at the same round-aligned times, deliver
    // the same observation stream, and apply the same affinity changes.
    let catalog = Catalog::drifting(0.3, 4);
    let workload = Workload::drifting(&catalog, 5, 1, 4);
    let programs = baseline_catalog(&catalog);
    let slots = build_slots(&workload, &catalog, &programs);
    let policy = Policy::Online(OnlineConfig {
        sample_interval_ns: 150_000.0,
        ..OnlineConfig::default()
    });
    let round = run_engine(slots.clone(), policy, EngineKind::RoundBased);
    let event = run_engine(slots, policy, EngineKind::EventDriven);
    assert_eq!(
        round.total_marks_executed, 0,
        "drifting programs are unmarkable"
    );
    assert!(
        event.total_core_switches > 0,
        "interval sampling produced no affinity-driven switches"
    );
    assert_equivalent(&round, &event);
}

#[test]
fn engines_agree_on_a_large_bursty_workload_with_online_sampling() {
    use phase_tuning::substrate::online::OnlineConfig;
    // The stress case for the batched event path: a larger catalogue and
    // slot count than the cases above, arrivals in waves (draining the
    // calendar queue across long idle gaps), AND the online policy's
    // periodic SampleInterval ticks landing between quantum expiries. Wave
    // gaps are deliberately not multiples of the sampling period, so arrival
    // bursts, sampling ticks, and quantum expiries collide at shared
    // timestamps in every combination the batch-application loop handles.
    let machine = machine();
    let catalog = Catalog::standard(0.15, 5);
    let workload = Workload::bursty(&catalog, 12, 2, 3, 1_250_000.0, 9);
    let programs = baseline_catalog(&catalog);
    let slots = build_slots(&workload, &catalog, &programs);
    let policy = Policy::Online(OnlineConfig {
        sample_interval_ns: 180_000.0,
        ..OnlineConfig::default()
    });
    let sim = SimConfig {
        horizon_ns: Some(12_000_000.0),
        ..SimConfig::default()
    };
    let run = |engine: EngineKind| {
        let mut plan = ExperimentPlan::new();
        plan.push(CellSpec {
            group: "golden-large".into(),
            label: format!("golden-large-{engine}"),
            machine: machine.clone(),
            slots: slots.clone(),
            policy,
            sim: SimConfig { engine, ..sim },
        });
        Driver::new(1).run(plan).cells.remove(0).result
    };
    let round = run(EngineKind::RoundBased);
    let event = run(EngineKind::EventDriven);
    assert!(
        round.records.iter().any(|r| r.arrival_ns > 0.0),
        "waves produced no delayed arrivals"
    );
    assert!(
        event.total_core_switches > 0,
        "online sampling never retuned anything"
    );
    assert_equivalent(&round, &event);
}

#[test]
fn engines_agree_on_a_bursty_arrival_workload() {
    let catalog = Catalog::extended(0.05, 3);
    let workload = Workload::bursty(&catalog, 8, 1, 3, 1_500_000.0, 3);
    let programs = baseline_catalog(&catalog);
    let slots = build_slots(&workload, &catalog, &programs);
    let round = run_engine(slots.clone(), Policy::Stock, EngineKind::RoundBased);
    let event = run_engine(slots, Policy::Stock, EngineKind::EventDriven);
    // The bursty workload genuinely exercises delayed arrivals.
    assert!(round.records.iter().any(|r| r.arrival_ns > 0.0));
    assert_equivalent(&round, &event);
}
