//! Property-based tests over the core data structures and analyses:
//! control-flow invariants on arbitrary generated procedures, clustering and
//! statistics invariants, and affinity-mask algebra.

use proptest::prelude::*;

use phase_tuning::substrate::amp::{AffinityMask, CoreId};
use phase_tuning::substrate::analysis::{kmeans, BlockTyping, KMeansConfig, PhaseType};
use phase_tuning::substrate::cfg::{Cfg, DominatorTree, IntervalPartition, LoopForest};
use phase_tuning::substrate::ir::{
    BlockId, BranchBehavior, Instruction, Location, ProcId, Procedure, ProcedureBuilder, Terminator,
};
use phase_tuning::substrate::metrics::SummaryStats;

/// Builds an arbitrary (possibly irreducible) procedure with `block_count`
/// blocks whose terminators are chosen from the given selector values.
fn arbitrary_procedure(block_count: usize, selectors: Vec<(u8, u8, u8)>) -> Procedure {
    let mut body = ProcedureBuilder::new();
    let blocks: Vec<BlockId> = (0..block_count).map(|_| body.add_block()).collect();
    for (&block, &(kind, a, b)) in blocks.iter().zip(selectors.iter()) {
        body.push(block, Instruction::int_alu());
        let target = |x: u8| blocks[x as usize % block_count];
        match kind % 3 {
            0 => body.terminate(block, Terminator::Jump(target(a))),
            1 => body.terminate(
                block,
                Terminator::Branch {
                    taken: target(a),
                    fallthrough: target(b),
                    behavior: BranchBehavior::counted(u32::from(a % 7) + 1),
                },
            ),
            _ => body.terminate(block, Terminator::Return),
        }
    }
    body.finish(ProcId(0), "arbitrary")
        .expect("builder output is valid")
}

fn procedure_strategy() -> impl Strategy<Value = Procedure> {
    (2usize..10).prop_flat_map(|n| {
        proptest::collection::vec((0u8..3, any::<u8>(), any::<u8>()), n)
            .prop_map(move |selectors| arbitrary_procedure(n, selectors))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every reachable block belongs to exactly one Allen interval, and
    /// unreachable blocks belong to none.
    #[test]
    fn intervals_partition_reachable_blocks(proc in procedure_strategy()) {
        let cfg = Cfg::build(&proc);
        let partition = IntervalPartition::build(&cfg);
        let reachable: std::collections::HashSet<BlockId> =
            cfg.preorder().into_iter().collect();
        for block in cfg.block_ids() {
            let memberships = partition
                .intervals()
                .iter()
                .filter(|i| i.contains(block))
                .count();
            if reachable.contains(&block) {
                prop_assert_eq!(memberships, 1, "block {} in {} intervals", block, memberships);
            } else {
                prop_assert_eq!(memberships, 0);
            }
        }
    }

    /// The entry dominates every reachable block; immediate dominators are
    /// themselves reachable; and natural-loop back edges always target the
    /// loop header.
    #[test]
    fn dominator_and_loop_invariants(proc in procedure_strategy()) {
        let cfg = Cfg::build(&proc);
        let dom = DominatorTree::build(&cfg);
        for block in cfg.preorder() {
            prop_assert!(dom.dominates(cfg.entry(), block));
            if block != cfg.entry() {
                let idom = dom.immediate_dominator(block);
                prop_assert!(idom.is_some());
                prop_assert!(dom.is_reachable(idom.unwrap()));
            }
        }
        let loops = LoopForest::build(&cfg, &dom);
        for natural in loops.loops() {
            prop_assert!(natural.contains(natural.header()));
            for edge in natural.back_edges() {
                prop_assert_eq!(edge.to, natural.header());
                prop_assert!(natural.contains(edge.from));
                prop_assert!(dom.dominates(edge.to, edge.from));
            }
            for &block in natural.blocks() {
                let innermost = loops.innermost(block).expect("block is in some loop");
                prop_assert!(innermost.block_count() <= natural.block_count());
            }
        }
    }

    /// Reverse postorder contains each reachable block exactly once and
    /// starts at the entry.
    #[test]
    fn reverse_postorder_is_a_permutation_of_reachable_blocks(proc in procedure_strategy()) {
        let cfg = Cfg::build(&proc);
        let rpo = cfg.reverse_postorder();
        let reachable = cfg.preorder();
        prop_assert_eq!(rpo.len(), reachable.len());
        let set: std::collections::HashSet<_> = rpo.iter().collect();
        prop_assert_eq!(set.len(), rpo.len());
        prop_assert_eq!(rpo[0], cfg.entry());
    }

    /// k-means assigns every point to an existing centroid and is
    /// deterministic for a fixed seed.
    #[test]
    fn kmeans_assignments_are_valid_and_deterministic(
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40),
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        let data: Vec<[f64; 2]> = points.iter().map(|(x, y)| [*x, *y]).collect();
        let config = KMeansConfig { k, max_iterations: 50, seed };
        let a = kmeans(&data, config);
        let b = kmeans(&data, config);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.assignments.len(), data.len());
        for &assignment in &a.assignments {
            prop_assert!(assignment < k);
        }
    }

    /// Summary statistics are ordered (min ≤ q1 ≤ median ≤ q3 ≤ max) and the
    /// mean lies within the range.
    #[test]
    fn summary_stats_are_ordered(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let stats = SummaryStats::of(&values);
        prop_assert!(stats.min <= stats.q1 + 1e-9);
        prop_assert!(stats.q1 <= stats.median + 1e-9);
        prop_assert!(stats.median <= stats.q3 + 1e-9);
        prop_assert!(stats.q3 <= stats.max + 1e-9);
        prop_assert!(stats.mean >= stats.min - 1e-9 && stats.mean <= stats.max + 1e-9);
        prop_assert_eq!(stats.count, values.len());
    }

    /// Injecting clustering error flips approximately the requested fraction
    /// of blocks (exactly `round(n * fraction)` of them).
    #[test]
    fn error_injection_flips_expected_fraction(
        block_count in 1usize..60,
        fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut typing = BlockTyping::new(2);
        for i in 0..block_count {
            typing.assign(
                Location::new(ProcId(0), BlockId(i as u32)),
                PhaseType((i % 2) as u32),
            );
        }
        let with_error = typing.with_injected_error(fraction, seed);
        let agreement = typing.agreement_with(&with_error);
        let expected_flips = (block_count as f64 * fraction).round();
        let expected_agreement = 1.0 - expected_flips / block_count as f64;
        prop_assert!((agreement - expected_agreement).abs() < 1e-9);
    }

    /// Affinity-mask algebra behaves like set algebra.
    #[test]
    fn affinity_mask_set_algebra(
        a in proptest::collection::btree_set(0u32..16, 0..8),
        b in proptest::collection::btree_set(0u32..16, 0..8),
    ) {
        let mask_a = AffinityMask::from_cores(a.iter().map(|c| CoreId(*c)));
        let mask_b = AffinityMask::from_cores(b.iter().map(|c| CoreId(*c)));
        let union: std::collections::BTreeSet<u32> = a.union(&b).copied().collect();
        let intersection: std::collections::BTreeSet<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(mask_a.union(&mask_b).core_count(), union.len());
        prop_assert_eq!(mask_a.intersect(&mask_b).core_count(), intersection.len());
        for core in 0..16u32 {
            prop_assert_eq!(mask_a.allows(CoreId(core)), a.contains(&core));
        }
    }

    /// The simulator's event queue never pops events out of timestamp order,
    /// and ties resolve by kind rank (arrivals, balance, sampling, quanta)
    /// and core.
    #[test]
    fn event_queue_pops_in_timestamp_order(
        events in proptest::collection::vec((0u64..50, 0u8..4, 0u32..4), 1..80),
    ) {
        use phase_tuning::substrate::sched::{EventKind, EventQueue};

        let mut queue = EventQueue::new();
        for &(slot, kind, core) in &events {
            let time_ns = slot as f64 * 20_000.0;
            let kind = match kind {
                0 => EventKind::JobArrival { core: CoreId(core) },
                1 => EventKind::LoadBalance,
                2 => EventKind::SampleInterval,
                _ => EventKind::QuantumExpiry { core: CoreId(core) },
            };
            queue.push(time_ns, kind);
        }
        prop_assert_eq!(queue.len(), events.len());

        let rank = |kind: EventKind| match kind {
            EventKind::JobArrival { .. } => 0u8,
            EventKind::LoadBalance => 1,
            EventKind::SampleInterval => 2,
            EventKind::QuantumExpiry { .. } => 3,
        };
        let core_of = |kind: EventKind| match kind {
            EventKind::JobArrival { core } | EventKind::QuantumExpiry { core } => core.0,
            EventKind::LoadBalance | EventKind::SampleInterval => 0,
        };
        let mut previous: Option<(f64, u8, u32)> = None;
        let mut popped = 0usize;
        while let Some(event) = queue.pop() {
            popped += 1;
            let key = (event.time_ns(), rank(event.kind()), core_of(event.kind()));
            if let Some(prev) = previous {
                prop_assert!(
                    prev <= key,
                    "events popped out of order: {:?} then {:?}",
                    prev,
                    key
                );
            }
            previous = Some(key);
        }
        prop_assert_eq!(popped, events.len());
        prop_assert!(queue.is_empty());
    }

    /// The bucketed calendar queue pops in exactly the binary-heap reference
    /// order under arbitrary interleavings of pushes and pops, with event
    /// times spread across every horizon the queue distinguishes: the live
    /// bucket, the in-window calendar, and the far-future overflow heap.
    #[test]
    fn bucket_queue_matches_heap_order_under_interleaving(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..4, any::<u8>(), 0u8..4, 0u32..4),
            1..100,
        ),
    ) {
        use phase_tuning::substrate::sched::{BucketQueue, EventKind, EventQueue};

        const WIDTH_NS: f64 = 20_000.0;
        let mut heap = EventQueue::new();
        let mut bucket = BucketQueue::new(WIDTH_NS);
        for &(op, horizon, step, kind, core) in &ops {
            if op == 0 {
                // A quarter of the ops pop mid-stream; popping advances the
                // calendar's base, so later pushes may land behind it.
                let reference = heap.pop();
                let candidate = bucket.pop();
                prop_assert_eq!(reference.is_some(), candidate.is_some());
                if let (Some(a), Some(b)) = (reference, candidate) {
                    prop_assert_eq!(a.time_ns(), b.time_ns());
                    prop_assert_eq!(a.kind(), b.kind());
                }
            } else {
                let base = match horizon {
                    0 => 0.0,                // the live bucket
                    1 => WIDTH_NS * 100.0,   // inside the calendar window
                    2 => WIDTH_NS * 300.0,   // just past it: overflow heap
                    _ => WIDTH_NS * 9_999.0, // deep future
                };
                // Fractional offsets: times need not be round-aligned.
                let time_ns = base + f64::from(step) * WIDTH_NS / 8.0;
                let kind = match kind {
                    0 => EventKind::JobArrival { core: CoreId(core) },
                    1 => EventKind::LoadBalance,
                    2 => EventKind::SampleInterval,
                    _ => EventKind::QuantumExpiry { core: CoreId(core) },
                };
                heap.push(time_ns, kind);
                bucket.push(time_ns, kind);
            }
        }
        prop_assert_eq!(heap.len(), bucket.len());
        loop {
            let reference = heap.pop();
            let candidate = bucket.pop();
            prop_assert_eq!(reference.is_some(), candidate.is_some());
            match (reference, candidate) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.time_ns(), b.time_ns());
                    prop_assert_eq!(a.kind(), b.kind());
                }
                _ => break,
            }
        }
        prop_assert!(bucket.is_empty());
    }

    /// The event-driven engine never completes a process before its arrival,
    /// never starts a released job early, and completes every job when run
    /// without a horizon — for arbitrary slot shapes, release times, and
    /// seeds.
    #[test]
    fn event_engine_respects_arrival_causality(
        slot_releases in proptest::collection::vec(0u32..150, 1..5),
        loop_trips in 5u32..40,
        seed in any::<u64>(),
    ) {
        use phase_tuning::substrate::sched::{JobSpec, NullHook, SimConfig, Simulation};
        use phase_tuning::substrate::ir::{Instruction, ProgramBuilder, Terminator};

        let mut builder = ProgramBuilder::new("prop-bench");
        let main = builder.declare_procedure("main");
        let mut body = builder.procedure_builder();
        let work = body.add_block();
        let exit = body.add_block();
        body.push_all(work, std::iter::repeat_n(Instruction::int_alu(), 16));
        body.loop_branch(work, work, exit, loop_trips);
        body.terminate(exit, Terminator::Exit);
        builder.define_procedure(main, body).expect("valid procedure");
        let program = builder.build().expect("valid program");
        let instrumented = std::sync::Arc::new(phase_tuning::uninstrumented(&program));

        let slots: Vec<Vec<JobSpec>> = slot_releases
            .iter()
            .enumerate()
            .map(|(index, &release)| {
                vec![
                    JobSpec::new(format!("first-{index}"), std::sync::Arc::clone(&instrumented))
                        .released_at(release as f64 * 10_000.0),
                    JobSpec::new(format!("second-{index}"), std::sync::Arc::clone(&instrumented)),
                ]
            })
            .collect();
        let config = SimConfig {
            seed,
            horizon_ns: None,
            ..SimConfig::default()
        };
        let machine = phase_tuning::substrate::amp::MachineSpec::core2_quad_amp();
        let result = Simulation::new("prop", machine, slots, NullHook, config).run();

        prop_assert_eq!(result.records.len(), slot_releases.len() * 2);
        prop_assert_eq!(result.completed_count(), slot_releases.len() * 2);
        for record in &result.records {
            let completion = record.completion_ns.expect("no horizon: all complete");
            prop_assert!(
                completion > record.arrival_ns,
                "{} completed at {} before arriving at {}",
                record.name,
                completion,
                record.arrival_ns
            );
        }
        // Released first jobs arrive exactly at their release times.
        for (index, &release) in slot_releases.iter().enumerate() {
            let record = result
                .records
                .iter()
                .find(|r| r.name == format!("first-{index}"))
                .expect("record exists");
            prop_assert_eq!(record.arrival_ns, release as f64 * 10_000.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The online leader–follower classifier is a pure stream function: for
    /// one interval stream it assigns identical phase ids (and ends with
    /// identical centroids) no matter how the stream is cut into batches.
    #[test]
    fn online_classifier_is_batch_invariant(
        stream in proptest::collection::vec((0.0f64..2.0, 0.0f64..1.0), 1..60),
        cut_points in proptest::collection::vec(any::<u64>(), 0..4),
    ) {
        use phase_tuning::substrate::online::{OnlineClassifier, PhaseId};

        let features: Vec<[f64; 2]> = stream.iter().map(|(a, b)| [*a, *b]).collect();

        let mut singly = OnlineClassifier::new(4, 0.2, 0.3);
        let one_by_one: Vec<PhaseId> = features.iter().map(|f| singly.observe(*f)).collect();

        let mut cuts: Vec<usize> = cut_points
            .iter()
            .map(|c| (*c as usize) % features.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(features.len());
        let mut batched_classifier = OnlineClassifier::new(4, 0.2, 0.3);
        let mut batched = Vec::new();
        let mut start = 0;
        for cut in cuts {
            if cut > start {
                batched.extend(batched_classifier.observe_batch(&features[start..cut]));
                start = cut;
            }
        }

        prop_assert_eq!(one_by_one, batched);
        prop_assert_eq!(singly.phase_count(), batched_classifier.phase_count());
        for index in 0..singly.phase_count() {
            let phase = PhaseId(index as u32);
            prop_assert_eq!(
                singly.centroid(phase),
                batched_classifier.centroid(phase),
                "centroid of {} diverged",
                phase
            );
            prop_assert_eq!(
                singly.observations(phase),
                batched_classifier.observations(phase)
            );
        }
    }
}
