//! Integration tests of the content-addressed artifact store: hit/miss
//! accounting across the staged pipeline, cross-thread determinism with
//! caching enabled, the on-disk JSON spill round-trip, and the byte-budget /
//! CLOCK-eviction layer behind the tuning service.

use std::sync::Arc;

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::marking::MarkingConfig;
use phase_tuning::substrate::runtime::TunerConfig;
use phase_tuning::substrate::sched::SimConfig;
use phase_tuning::substrate::workload::{CatalogSpec, Workload};
use phase_tuning::{
    prepare_workload_cached, run_comparison_prepared, ArtifactStore, Driver, ExperimentConfig,
    ExperimentPlan, PipelineConfig, PlannedWorkload, Policy,
};

fn smoke_config(marking: MarkingConfig) -> ExperimentConfig {
    ExperimentConfig {
        pipeline: PipelineConfig::with_marking(marking),
        ..ExperimentConfig::smoke_test()
    }
}

#[test]
fn sweeping_one_axis_reuses_every_upstream_artifact() {
    let store = ArtifactStore::new();

    // First sweep point computes everything.
    let first = prepare_workload_cached(&smoke_config(MarkingConfig::loop_level(45)), &store);
    let after_first = store.stats();
    assert_eq!(after_first.stage("catalogs").unwrap().misses, 1);
    assert_eq!(after_first.stage("baselines").unwrap().misses, 15);
    assert_eq!(after_first.stage("isolated_runtimes").unwrap().misses, 1);
    let instrumented_misses = after_first.stage("instrumented").unwrap().misses;
    assert_eq!(instrumented_misses, 15);

    // A point that differs only in the marking reuses the catalogue, the
    // baseline twins, the isolated runtimes, and the per-block IPC profiles —
    // only typing/summarization/instrumentation rerun.
    let second = prepare_workload_cached(&smoke_config(MarkingConfig::interval(45)), &store);
    let after_second = store.stats();
    assert_eq!(after_second.stage("catalogs").unwrap().misses, 1);
    assert_eq!(after_second.stage("baselines").unwrap().misses, 15);
    assert_eq!(after_second.stage("isolated_runtimes").unwrap().misses, 1);
    assert!(after_second.stage("catalogs").unwrap().hits >= 1);
    assert!(after_second.stage("baselines").unwrap().hits >= 15);
    assert_eq!(
        after_second.stage("instrumented").unwrap().misses,
        instrumented_misses + 15,
        "a new marking config re-instruments"
    );
    // Loop[45] and Int[45] share the typing min-block-size, so the second
    // sweep point adds no profiling misses at all.
    assert_eq!(
        after_second.stage("ipc_profiles").unwrap().misses,
        after_first.stage("ipc_profiles").unwrap().misses
    );

    // An identical third request is answered entirely from the store.
    let third = prepare_workload_cached(&smoke_config(MarkingConfig::interval(45)), &store);
    let after_third = store.stats();
    assert_eq!(
        after_third.stage("instrumented").unwrap().misses,
        after_second.stage("instrumented").unwrap().misses
    );
    assert_eq!(third.isolated_ns, second.isolated_ns);
    assert_eq!(first.isolated_ns, second.isolated_ns);
}

#[test]
fn cached_and_uncached_comparisons_agree_bit_for_bit() {
    let config = smoke_config(MarkingConfig::loop_level(30));
    let store = ArtifactStore::new();
    let cached_prepared = prepare_workload_cached(&config, &store);
    let uncached_prepared = phase_tuning::prepare_workload(&config);
    assert_eq!(cached_prepared.isolated_ns, uncached_prepared.isolated_ns);

    let cached = run_comparison_prepared(&config, &cached_prepared);
    let uncached = run_comparison_prepared(&config, &uncached_prepared);
    assert_eq!(cached.baseline, uncached.baseline);
    assert_eq!(cached.tuned, uncached.tuned);
    assert_eq!(cached.fairness, uncached.fairness);
}

fn cached_plan_outcome(threads: usize, store: &ArtifactStore) -> phase_tuning::PlanOutcome {
    let catalog = store.catalog(&CatalogSpec::standard(0.05, 11));
    let machine = MachineSpec::core2_quad_amp();
    let pipeline = PipelineConfig::paper_best();
    let instrumented: Vec<_> = catalog
        .benchmarks()
        .iter()
        .map(|b| store.instrumented(b.program(), &machine, &pipeline))
        .collect();
    let baseline: Vec<_> = catalog
        .benchmarks()
        .iter()
        .map(|b| store.baseline(b.program()))
        .collect();
    let workload = Workload::random(&catalog, 4, 1, 11);
    let planned = PlannedWorkload {
        name: "w".into(),
        baseline_slots: phase_tuning::build_slots(&workload, &catalog, &baseline),
        tuned_slots: phase_tuning::build_slots(&workload, &catalog, &instrumented),
    };
    let sim = SimConfig {
        horizon_ns: Some(2_000_000.0),
        ..SimConfig::default()
    };
    let plan = ExperimentPlan::cross(
        &[planned],
        &[machine],
        &[Policy::Stock, Policy::Tuned(TunerConfig::default())],
        sim,
        0xFEED,
    );
    Driver::new(threads).run_cached(plan, store)
}

#[test]
fn caching_keeps_thread_counts_bit_identical() {
    // Fresh stores per worker count: every divergence would have to come
    // from the cache layer itself.
    let sequential = cached_plan_outcome(1, &ArtifactStore::new());
    let parallel = cached_plan_outcome(8, &ArtifactStore::new());
    assert_eq!(sequential.aggregate, parallel.aggregate);
    for (a, b) in sequential.cells.iter().zip(parallel.cells.iter()) {
        assert_eq!(a.result, b.result);
        assert_eq!(a.label, b.label);
    }

    // And a warm store must reproduce the cold outcome exactly, whatever the
    // worker count.
    let store = ArtifactStore::new();
    let cold = cached_plan_outcome(8, &store);
    let warm = cached_plan_outcome(1, &store);
    for (a, b) in cold.cells.iter().zip(warm.cells.iter()) {
        assert_eq!(a.result, b.result);
    }
    let cells = store.stats().stage("cells").unwrap();
    assert!(cells.hits >= 2, "warm plan hits the cell cache ({cells:?})");
}

#[test]
fn spill_round_trips_through_json() {
    let store = ArtifactStore::new();
    let config = smoke_config(MarkingConfig::loop_level(45));
    prepare_workload_cached(&config, &store);

    let dir = std::env::temp_dir().join(format!("phase-artifacts-{}", std::process::id()));
    let files = store
        .spill_to_dir_with(&dir, phase_tuning::SpillFormat::Json)
        .expect("spill succeeds");
    assert_eq!(
        files.len(),
        5,
        "index + manifest + three serializable stages"
    );
    for file in &files {
        assert!(file.exists());
        let text = std::fs::read_to_string(file).unwrap();
        phase_tuning::json::parse(&text).expect("spilled JSON parses");
    }

    // A fresh store pre-warmed from the spill answers typing, profiling, and
    // isolated-runtime lookups without recomputing them.
    let fresh = ArtifactStore::new();
    let loaded = fresh.load_spill_dir(&dir).expect("load succeeds");
    assert!(loaded > 0, "loaded {loaded} artifacts");
    let catalog = fresh.catalog(&CatalogSpec::standard(
        config.catalog_scale,
        config.workload_seed,
    ));
    let before = fresh.stats().stage("typings").unwrap();
    assert_eq!(before.misses, 0);
    for bench in catalog.benchmarks() {
        let reloaded = fresh.typing(bench.program(), &config.machine, &config.pipeline);
        let recomputed = store.typing(bench.program(), &config.machine, &config.pipeline);
        assert_eq!(
            reloaded.typed_block_count(),
            recomputed.typed_block_count(),
            "{}",
            bench.name()
        );
        assert_eq!(
            reloaded.agreement_with(&recomputed),
            1.0,
            "{}",
            bench.name()
        );
    }
    let after = fresh.stats().stage("typings").unwrap();
    assert_eq!(
        after.misses, 0,
        "every typing lookup was answered from disk"
    );
    assert_eq!(after.hits, 15);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bounded_store_reproduces_the_unbounded_outcome_within_budget() {
    let config = smoke_config(MarkingConfig::loop_level(45));
    let unbounded = ArtifactStore::new();
    let reference = run_comparison_prepared(&config, &prepare_workload_cached(&config, &unbounded));

    // A budget far below the unbounded footprint forces the CLOCK sweep to
    // run mid-preparation — and must change nothing about the answer. The
    // budget is sized against the *analysis* stages (the whole-catalogue
    // artifact is larger than it, so it is admission-rejected and simply
    // recomputed per preparation — also an answer-preserving path).
    let budget = unbounded
        .snapshot()
        .stages
        .iter()
        .filter(|(name, _)| *name != "catalogs")
        .map(|(_, s)| s.resident_bytes)
        .sum::<u64>()
        / 2;
    assert!(budget > 0, "the smoke config populates the store");
    let bounded = ArtifactStore::with_budget(budget);
    assert_eq!(bounded.budget_bytes(), Some(budget));
    for _ in 0..2 {
        let outcome = run_comparison_prepared(&config, &prepare_workload_cached(&config, &bounded));
        assert_eq!(outcome.baseline, reference.baseline);
        assert_eq!(outcome.tuned, reference.tuned);
        assert_eq!(outcome.fairness, reference.fairness);
        assert!(
            bounded.resident_bytes() <= budget,
            "resident {} exceeded budget {budget}",
            bounded.resident_bytes()
        );
    }
    let snapshot = bounded.snapshot();
    assert!(
        snapshot.total_evictions() > 0,
        "a quarter-size budget must evict: {snapshot:?}"
    );
    // The consistent snapshot keeps every stage's counters balanced.
    for (name, stage) in &snapshot.stages {
        assert_eq!(
            stage.inserts - stage.evictions,
            stage.entries as u64,
            "stage {name} out of balance"
        );
        assert_eq!(stage.lookups(), stage.hits + stage.misses);
    }
}

#[test]
fn snapshot_is_consistent_under_concurrent_mutation() {
    // Hammer one bounded store from worker threads while a reader thread
    // takes snapshots: every snapshot must satisfy the balance invariants,
    // which a torn read of independent atomics would violate.
    let store = ArtifactStore::with_budget(512 * 1024);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for worker in 0..4u64 {
            let store = &store;
            let stop = &stop;
            scope.spawn(move || {
                let machine = MachineSpec::core2_quad_amp();
                let pipeline = PipelineConfig::paper_best();
                let mut round = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let seed = worker * 100 + round % 3;
                    let catalog = store.catalog(&CatalogSpec::standard(0.04, seed));
                    for bench in catalog.benchmarks().iter().take(3) {
                        store.instrumented(bench.program(), &machine, &pipeline);
                    }
                    round += 1;
                }
            });
        }
        let store = &store;
        let budget = store.budget_bytes().unwrap();
        for _ in 0..200 {
            let snapshot = store.snapshot();
            for (name, stage) in &snapshot.stages {
                assert_eq!(
                    stage.inserts - stage.evictions,
                    stage.entries as u64,
                    "torn snapshot in stage {name}: {stage:?}"
                );
            }
            assert!(snapshot.resident_bytes() <= budget);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

#[test]
fn baseline_twins_are_shared_across_pipeline_configs() {
    let store = ArtifactStore::new();
    let catalog = store.catalog(&CatalogSpec::standard(0.05, 7));
    let program = catalog.benchmarks()[0].program();
    let a = store.baseline(program);
    let b = store.baseline(program);
    assert!(Arc::ptr_eq(&a, &b), "one baseline artifact per program");
    assert_eq!(a.mark_count(), 0);

    // Structurally identical programs from a separately generated catalogue
    // share the artifact too (content addressing, not pointer identity).
    let again = ArtifactStore::new();
    let other_catalog = CatalogSpec::standard(0.05, 7).build();
    assert_eq!(
        again.program_fingerprint(other_catalog.benchmarks()[0].program()),
        store.program_fingerprint(program)
    );
}
