//! Determinism tests for the parallel experiment driver: the same plan run
//! with one worker and with eight workers must produce bit-identical
//! `SimResult` aggregates — the worker count only changes wall-clock time.

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::online::OnlineConfig;
use phase_tuning::substrate::runtime::TunerConfig;
use phase_tuning::substrate::sched::SimConfig;
use phase_tuning::substrate::workload::{Catalog, Workload};
use phase_tuning::{
    baseline_catalog, build_slots, instrument_catalog, Driver, ExperimentPlan, PipelineConfig,
    PlannedWorkload, Policy,
};

fn plan() -> ExperimentPlan {
    let machine = MachineSpec::core2_quad_amp();
    let catalog = Catalog::extended(0.05, 9);
    let pipeline = PipelineConfig::paper_best();
    let instrumented = instrument_catalog(&catalog, &machine, &pipeline);
    let plain = baseline_catalog(&catalog);
    let drifting_catalog = Catalog::drifting(0.3, 9);
    let drifting_plain = baseline_catalog(&drifting_catalog);
    let mut workloads: Vec<PlannedWorkload> = [
        ("dense", Workload::random(&catalog, 5, 2, 31)),
        ("bursty", Workload::bursty(&catalog, 6, 1, 3, 800_000.0, 32)),
    ]
    .into_iter()
    .map(|(name, workload)| PlannedWorkload {
        name: name.to_string(),
        baseline_slots: build_slots(&workload, &catalog, &plain),
        tuned_slots: build_slots(&workload, &catalog, &instrumented),
    })
    .collect();
    // An unmarkable drifting workload: its online cells exercise the
    // interval-sampling path, which must be as deterministic as the rest.
    let drifting = Workload::drifting(&drifting_catalog, 4, 1, 33);
    workloads.push(PlannedWorkload {
        name: "drifting".to_string(),
        baseline_slots: build_slots(&drifting, &drifting_catalog, &drifting_plain),
        tuned_slots: build_slots(&drifting, &drifting_catalog, &drifting_plain),
    });
    let sim = SimConfig {
        horizon_ns: Some(3_000_000.0),
        ..SimConfig::default()
    };
    ExperimentPlan::cross(
        &workloads,
        &[machine],
        &[
            Policy::Stock,
            Policy::Tuned(TunerConfig::paper_table1()),
            Policy::Online(OnlineConfig {
                sample_interval_ns: 100_000.0,
                ..OnlineConfig::default()
            }),
        ],
        sim,
        0x0D57_EC60,
    )
}

#[test]
fn one_worker_and_eight_workers_agree_bit_for_bit() {
    let sequential = Driver::new(1).run(plan());
    let parallel = Driver::new(8).run(plan());

    // The streaming aggregate is order-independent by construction.
    assert_eq!(sequential.aggregate, parallel.aggregate);
    assert!(sequential.aggregate.total_instructions > 0);
    assert_eq!(sequential.aggregate.cells_completed, 9);

    // Per-cell results are bit-identical, including every floating-point
    // field (completion times, busy nanoseconds, throughput windows).
    assert_eq!(sequential.cells.len(), parallel.cells.len());
    for (a, b) in sequential.cells.iter().zip(parallel.cells.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.label, b.label);
        assert_eq!(a.result, b.result, "cell {} diverged", a.label);
        assert_eq!(a.tuner_stats, b.tuner_stats, "cell {} tuner", a.label);
        assert_eq!(a.online_stats, b.online_stats, "cell {} online", a.label);
    }

    // The online cells really ran the sampling path.
    let online_sampled: u64 = sequential
        .cells
        .iter()
        .filter_map(|cell| cell.online_stats)
        .map(|stats| stats.intervals_observed)
        .sum();
    assert!(online_sampled > 0, "no interval observations were made");

    // Deterministic floating-point summaries match exactly as well.
    let flows_a = sequential.flow_summary();
    let flows_b = parallel.flow_summary();
    assert_eq!(flows_a, flows_b);
    assert!(flows_a.count > 0);
}

#[test]
fn repeated_runs_of_the_same_plan_agree() {
    let first = Driver::new(4).run(plan());
    let second = Driver::new(4).run(plan());
    assert_eq!(first.aggregate, second.aggregate);
    for (a, b) in first.cells.iter().zip(second.cells.iter()) {
        assert_eq!(a.result, b.result);
    }
}
