//! Wiring tests for the Cargo workspace itself: every layer of the crate DAG
//! must be reachable through the `phase_tuning` facade, and the default
//! configurations of the dynamic layers (`SimConfig` from `phase-sched`,
//! `TunerConfig` from `phase-runtime`) must compose into a runnable
//! end-to-end comparison.

use phase_tuning::substrate::runtime::TunerConfig;
use phase_tuning::substrate::sched::SimConfig;
use phase_tuning::{run_comparison, ExperimentConfig};

/// The default `SimConfig` + `TunerConfig` drive `run_comparison` on a tiny
/// 2-slot workload, and the tuned run does real work: it commits
/// instructions, executes phase marks, and performs core switches.
#[test]
fn default_configs_run_a_two_slot_comparison() {
    let config = ExperimentConfig {
        tuner: TunerConfig::default(),
        sim: SimConfig {
            horizon_ns: Some(4_000_000.0),
            ..SimConfig::default()
        },
        workload_slots: 2,
        jobs_per_slot: 2,
        catalog_scale: 0.05,
        ..ExperimentConfig::default()
    };

    let outcome = run_comparison(&config);

    assert!(
        outcome.baseline.total_instructions > 0,
        "baseline committed no instructions"
    );
    assert!(
        outcome.tuned.total_instructions > 0,
        "tuned run committed no instructions"
    );
    assert!(
        outcome.tuned.total_marks_executed > 0,
        "tuned run executed no phase marks"
    );
    assert!(
        outcome.tuned.total_core_switches > 0,
        "tuned run performed no core switches"
    );
    // The baseline runs uninstrumented binaries under the stock scheduler:
    // no marks may fire there.
    assert_eq!(
        outcome.baseline.total_marks_executed, 0,
        "baseline must not execute phase marks"
    );
}

/// Every substrate crate is reachable through the facade's `substrate`
/// module, using at least one type per crate, so a missing re-export or a
/// broken inter-crate edge fails this test at compile time.
#[test]
fn every_substrate_layer_is_reachable_through_the_facade() {
    use phase_tuning::substrate::{
        amp, analysis, cfg, ir, marking, metrics, online, runtime, sched, workload,
    };

    // Static layers: ir -> cfg -> analysis -> marking.
    let mut builder = ir::ProgramBuilder::new("wiring");
    let main = builder.declare_procedure("main");
    let mut body = builder.procedure_builder();
    let entry = body.add_block();
    body.push_all(entry, std::iter::repeat_n(ir::Instruction::fp_mul(), 20));
    body.terminate(entry, ir::Terminator::Exit);
    builder
        .define_procedure(main, body)
        .expect("valid procedure");
    let program = builder.build().expect("valid program");

    let cfg_built = cfg::Cfg::build(program.procedures().first().expect("one procedure"));
    assert!(cfg_built.block_count() > 0);

    let typing = analysis::assign_block_types(&program, &analysis::StaticTypingConfig::default());
    let instrumented = marking::instrument(
        &program,
        &typing,
        &marking::MarkingConfig::basic_block(15, 0),
    );
    assert_eq!(
        instrumented.mark_count(),
        0,
        "single-phase program needs no marks"
    );

    // Dynamic layers: amp -> sched -> runtime, measured by metrics, fed by
    // workload.
    let machine = amp::MachineSpec::core2_quad_amp();
    assert!(machine.is_asymmetric());
    let _sim = sched::SimConfig::default();
    let _tuner = runtime::TunerConfig::default();
    let online_config = online::OnlineConfig::default();
    assert!(online_config.sample_interval_ns > 0.0);
    let stats = metrics::SummaryStats::of(&[1.0, 2.0, 3.0]);
    assert_eq!(stats.count, 3);
    let catalog = workload::Catalog::tiny(7);
    assert!(!catalog.is_empty());
}
