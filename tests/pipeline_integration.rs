//! Integration tests for the static half of the reproduction: catalogue
//! generation, control-flow analysis, block typing, and phase marking all
//! working together.

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::cfg::{Cfg, DominatorTree, LoopForest};
use phase_tuning::substrate::marking::{Granularity, MarkingConfig};
use phase_tuning::substrate::workload::Catalog;
use phase_tuning::{prepare_program, type_blocks, PipelineConfig};

fn catalog() -> Catalog {
    Catalog::tiny(11)
}

#[test]
fn every_catalogue_benchmark_survives_the_full_pipeline() {
    let machine = MachineSpec::core2_quad_amp();
    let pipeline = PipelineConfig::paper_best();
    for bench in catalog().benchmarks() {
        let instrumented = prepare_program(bench.program(), &machine, &pipeline);
        // The instrumented program still refers to the same underlying code.
        assert_eq!(instrumented.program().name(), bench.name());
        // Space overhead is bounded: marks are small relative to binaries.
        assert!(
            instrumented.stats().space_overhead < 0.10,
            "{}: unexpectedly large space overhead {:.3}",
            bench.name(),
            instrumented.stats().space_overhead
        );
    }
}

#[test]
fn marks_sit_only_on_edges_where_the_phase_type_changes() {
    let machine = MachineSpec::core2_quad_amp();
    for granularity in [
        MarkingConfig::basic_block(15, 0),
        MarkingConfig::interval(45),
        MarkingConfig::paper_best(),
    ] {
        let pipeline = PipelineConfig::with_marking(granularity);
        for bench in catalog().benchmarks() {
            let instrumented = prepare_program(bench.program(), &machine, &pipeline);
            for mark in instrumented.marks() {
                assert_ne!(
                    mark.previous_type,
                    Some(mark.phase_type),
                    "{}: mark {:?} does not change the phase type",
                    bench.name(),
                    mark.id
                );
            }
        }
    }
}

#[test]
fn single_phase_benchmarks_get_almost_no_loop_level_marks() {
    // 459.GemsFDTD and 473.astar consist of a single phase kind; the paper's
    // Table 1 reports zero switches for them, which requires (almost) no
    // phase marks from the loop technique — at most the entry into the one
    // hot region from untyped start-up code.
    let machine = MachineSpec::core2_quad_amp();
    let pipeline = PipelineConfig::paper_best();
    let catalog = catalog();
    let equake = catalog.by_name("183.equake").expect("catalogue benchmark");
    let equake_marks = prepare_program(equake.program(), &machine, &pipeline).mark_count();
    assert!(equake_marks > 0);
    for name in ["459.GemsFDTD", "473.astar"] {
        let bench = catalog.by_name(name).expect("catalogue benchmark");
        let instrumented = prepare_program(bench.program(), &machine, &pipeline);
        assert!(
            instrumented.mark_count() <= 2,
            "{name} should have (almost) no phase transitions, found {}",
            instrumented.mark_count()
        );
        assert!(instrumented.mark_count() < equake_marks);
    }
}

#[test]
fn loop_marking_executes_far_fewer_marks_than_basic_block_marking() {
    // The paper's reason for preferring the loop technique is dynamic, not
    // static: it keeps marks out of hot loop bodies, so far fewer marks are
    // *executed* (Figure 4). Check that on an alternating benchmark.
    use phase_tuning::substrate::sched::{run_in_isolation, NullHook, SimConfig};
    use std::sync::Arc;

    let machine = MachineSpec::core2_quad_amp();
    let catalog = catalog();
    let bench = catalog.by_name("183.equake").expect("catalogue benchmark");
    let executed = |marking: MarkingConfig| {
        let instrumented = Arc::new(prepare_program(
            bench.program(),
            &machine,
            &PipelineConfig::with_marking(marking),
        ));
        run_in_isolation(
            bench.name(),
            instrumented,
            machine.clone(),
            NullHook,
            SimConfig::default(),
        )
        .stats
        .marks_executed
    };
    let bb = executed(MarkingConfig::basic_block(15, 0));
    let lp = executed(MarkingConfig::paper_best());
    assert!(
        lp * 5 < bb,
        "loop marking should execute far fewer marks (loop {lp}, basic block {bb})"
    );
}

#[test]
fn typing_is_deterministic_and_respects_granularity_thresholds() {
    let machine = MachineSpec::core2_quad_amp();
    let bench_catalog = catalog();
    let bench = bench_catalog
        .by_name("401.bzip2")
        .expect("catalogue benchmark");
    let pipeline = PipelineConfig::paper_best();
    let a = type_blocks(bench.program(), &machine, &pipeline);
    let b = type_blocks(bench.program(), &machine, &pipeline);
    assert_eq!(a, b, "typing must be deterministic");
    assert!(a.typed_block_count() > 0);

    // Basic-block typing at a huge threshold types nothing.
    let huge = PipelineConfig::with_marking(MarkingConfig::basic_block(10_000, 0));
    let typing = type_blocks(bench.program(), &machine, &huge);
    assert_eq!(typing.typed_block_count(), 0);
}

#[test]
fn generated_programs_have_well_formed_loop_structure() {
    for bench in catalog().benchmarks() {
        for proc in bench.program().procedures() {
            let cfg = Cfg::build(proc);
            let dom = DominatorTree::build(&cfg);
            let loops = LoopForest::build(&cfg, &dom);
            for natural in loops.loops() {
                assert!(natural.contains(natural.header()));
                for edge in natural.back_edges() {
                    assert!(natural.contains(edge.from));
                    assert_eq!(edge.to, natural.header());
                }
                // The header dominates every block of the loop (reducible
                // programs only, which the generator produces).
                for &block in natural.blocks() {
                    assert!(
                        dom.dominates(natural.header(), block),
                        "{}: {} not dominated by loop header {}",
                        proc.name(),
                        block,
                        natural.header()
                    );
                }
            }
        }
    }
}

#[test]
fn instrumentation_preserves_the_marking_configuration() {
    let machine = MachineSpec::core2_quad_amp();
    let bench_catalog = catalog();
    let bench = bench_catalog
        .by_name("171.swim")
        .expect("catalogue benchmark");
    for marking in MarkingConfig::table2_variants() {
        let instrumented = prepare_program(
            bench.program(),
            &machine,
            &PipelineConfig::with_marking(marking),
        );
        assert_eq!(*instrumented.config(), marking);
        match marking.granularity {
            Granularity::BasicBlock | Granularity::Interval | Granularity::Loop => {
                assert_eq!(
                    instrumented.stats().added_bytes,
                    instrumented.mark_count() as u64 * 78
                );
            }
        }
    }
}
