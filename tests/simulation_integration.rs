//! Integration tests for the dynamic half: the scheduler simulation, the
//! tuner, and the experiment runner working together over real workloads.

use std::sync::Arc;

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::marking::MarkingConfig;
use phase_tuning::substrate::runtime::{PhaseTuner, TunerConfig};
use phase_tuning::substrate::sched::{run_in_isolation, NullHook, SimConfig};
use phase_tuning::substrate::workload::Catalog;
use phase_tuning::{
    prepare_program, prepare_workload, run_comparison_prepared, uninstrumented, ExperimentConfig,
    PipelineConfig,
};

fn small_experiment() -> ExperimentConfig {
    ExperimentConfig {
        workload_slots: 6,
        jobs_per_slot: 2,
        catalog_scale: 0.06,
        sim: SimConfig {
            horizon_ns: Some(6_000_000.0),
            ..SimConfig::default()
        },
        pipeline: PipelineConfig::with_marking(MarkingConfig::loop_level(30)),
        ..ExperimentConfig::default()
    }
}

#[test]
fn baseline_and_tuned_runs_share_queues_and_account_consistently() {
    let config = small_experiment();
    let prepared = prepare_workload(&config);
    let outcome = run_comparison_prepared(&config, &prepared);

    for result in [&outcome.baseline, &outcome.tuned] {
        // Per-process instruction counts add up to the global counter.
        let per_process: u64 = result.records.iter().map(|r| r.stats.instructions).sum();
        assert_eq!(per_process, result.total_instructions, "{}", result.label);
        // Throughput windows cover the same total.
        let windowed: u64 = result.throughput_windows.iter().sum();
        assert_eq!(windowed, result.total_instructions, "{}", result.label);
        // Completions never precede arrivals and never exceed the end time.
        for record in result.completed() {
            let completion = record.completion_ns.unwrap();
            assert!(completion >= record.arrival_ns);
            assert!(completion <= result.final_time_ns + 1.0);
        }
        // Core busy time never exceeds the simulated horizon per core.
        for &busy in &result.core_busy_ns {
            assert!(busy <= result.final_time_ns + 1.0);
        }
    }

    // The baseline never executes marks or switches cores; the tuned run does
    // both.
    assert_eq!(outcome.baseline.total_marks_executed, 0);
    assert_eq!(outcome.baseline.total_core_switches, 0);
    assert!(outcome.tuned.total_marks_executed > 0);
    // The same job mix was offered to both runs.
    fn sorted_names(r: &phase_tuning::substrate::sched::SimResult) -> Vec<String> {
        let mut v: Vec<String> = r.records.iter().map(|p| p.name.clone()).collect();
        v.sort();
        v
    }
    // Started processes may differ in count (slower run starts fewer queued
    // jobs), but the first jobs of every slot are identical.
    let baseline_first: Vec<String> = sorted_names(&outcome.baseline)
        .into_iter()
        .take(config.workload_slots)
        .collect();
    let tuned_first: Vec<String> = sorted_names(&outcome.tuned)
        .into_iter()
        .take(config.workload_slots)
        .collect();
    assert_eq!(baseline_first, tuned_first);
}

#[test]
fn comparisons_are_reproducible_for_a_fixed_seed() {
    let config = small_experiment();
    let prepared = prepare_workload(&config);
    let a = run_comparison_prepared(&config, &prepared);
    let b = run_comparison_prepared(&config, &prepared);
    assert_eq!(a.baseline.total_instructions, b.baseline.total_instructions);
    assert_eq!(a.tuned.total_instructions, b.tuned.total_instructions);
    assert_eq!(a.tuned.records, b.tuned.records);
    assert_eq!(a.fairness, b.fairness);
}

#[test]
fn workload_without_horizon_completes_every_job() {
    let mut config = small_experiment();
    config.sim.horizon_ns = None;
    config.jobs_per_slot = 1;
    config.workload_slots = 4;
    let prepared = prepare_workload(&config);
    let outcome = run_comparison_prepared(&config, &prepared);
    assert_eq!(outcome.baseline.completed_count(), 4);
    assert_eq!(outcome.tuned.completed_count(), 4);
}

#[test]
fn single_phase_benchmark_never_switches_cores_in_isolation() {
    let machine = MachineSpec::core2_quad_amp();
    let catalog = Catalog::tiny(3);
    let bench = catalog
        .by_name("459.GemsFDTD")
        .expect("catalogue benchmark");
    let instrumented = Arc::new(prepare_program(
        bench.program(),
        &machine,
        &PipelineConfig::paper_best(),
    ));
    let tuner = PhaseTuner::new(Arc::new(machine.clone()), TunerConfig::paper_table1());
    let record = run_in_isolation(
        bench.name(),
        instrumented,
        machine,
        tuner,
        SimConfig::default(),
    );
    assert_eq!(record.stats.core_switches, 0);
    assert_eq!(record.stats.marks_executed, 0);
}

#[test]
fn alternating_benchmark_switches_cores_under_the_tuner() {
    let machine = MachineSpec::core2_quad_amp();
    let catalog = Catalog::standard(0.15, 3);
    let bench = catalog.by_name("171.swim").expect("catalogue benchmark");
    let instrumented = Arc::new(prepare_program(
        bench.program(),
        &machine,
        &PipelineConfig::paper_best(),
    ));
    let tuner = PhaseTuner::new(Arc::new(machine.clone()), TunerConfig::paper_table1());
    let handle = tuner.clone();
    let record = run_in_isolation(
        bench.name(),
        instrumented,
        machine,
        tuner,
        SimConfig::default(),
    );
    assert!(record.stats.marks_executed > 0);
    assert!(
        handle.stats().sections_monitored > 0,
        "the tuner must have monitored representative sections"
    );
    // Once assignments exist, time is split across both core kinds.
    assert!(record.stats.time_on_kind_ns[0] > 0.0);
}

#[test]
fn symmetric_machine_keeps_the_tuner_quiet() {
    let machine = MachineSpec::symmetric(4, 2.4);
    let catalog = Catalog::tiny(3);
    let bench = catalog.by_name("183.equake").expect("catalogue benchmark");
    let instrumented = Arc::new(prepare_program(
        bench.program(),
        &MachineSpec::core2_quad_amp(),
        &PipelineConfig::paper_best(),
    ));
    let tuner = PhaseTuner::new(Arc::new(machine.clone()), TunerConfig::paper_table1());
    let record = run_in_isolation(
        bench.name(),
        instrumented,
        machine,
        tuner,
        SimConfig::default(),
    );
    // With a single core kind there is never a reason to migrate.
    assert_eq!(record.stats.core_switches, 0);
}

#[test]
fn mark_overhead_is_negligible_in_isolation() {
    // The paper claims < 0.2% time overhead; check the same order of
    // magnitude for an instrumented-but-untuned isolated run.
    let machine = MachineSpec::core2_quad_amp();
    let catalog = Catalog::standard(0.15, 3);
    let bench = catalog.by_name("410.bwaves").expect("catalogue benchmark");
    let plain = Arc::new(uninstrumented(bench.program()));
    let marked = Arc::new(prepare_program(
        bench.program(),
        &machine,
        &PipelineConfig::paper_best(),
    ));
    let baseline = run_in_isolation(
        bench.name(),
        plain,
        machine.clone(),
        NullHook,
        SimConfig::default(),
    );
    let instrumented = run_in_isolation(
        bench.name(),
        marked,
        machine,
        NullHook,
        SimConfig::default(),
    );
    let base = baseline.completion_ns.unwrap();
    let inst = instrumented.completion_ns.unwrap();
    let overhead = (inst - base) / base;
    assert!(
        overhead.abs() < 0.01,
        "mark execution overhead {overhead:.4} should stay below 1%"
    );
}
