//! # phase-tuning
//!
//! Umbrella crate of the phase-based-tuning reproduction (Sondag & Rajan,
//! CGO 2011). It re-exports the [`phase_core`] facade — the static
//! instrumentation pipeline and the baseline-versus-tuned experiment runner —
//! plus every substrate crate under [`phase_core::substrate`], and hosts the
//! repository's runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`).
//!
//! ```
//! use phase_tuning::{ExperimentConfig, run_comparison};
//!
//! let mut config = ExperimentConfig::smoke_test();
//! config.workload_slots = 4;
//! let outcome = run_comparison(&config);
//! assert!(outcome.baseline.total_instructions > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use phase_core::*;

/// Direct re-exports of the substrate crates for convenience.
pub use phase_core::substrate;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_reachable() {
        let _ = crate::ExperimentConfig::smoke_test();
        let machine = crate::substrate::amp::MachineSpec::core2_quad_amp();
        assert!(machine.is_asymmetric());
    }
}
