//! The paper's headline experiment: a workload of simultaneously running
//! SPEC-like benchmarks, scheduled by the stock (asymmetry-oblivious)
//! scheduler versus phase-based tuning, on the 2-fast/2-slow Core-2-Quad-like
//! machine.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example spec_workload -- [slots] [jobs_per_slot] [ipc_threshold] [threads]
//! ```

use phase_tuning::substrate::marking::MarkingConfig;
use phase_tuning::{
    format_duration_ns, format_pct, run_comparison, ExperimentConfig, PipelineConfig, TextTable,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let slots: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(18);
    let jobs_per_slot: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let ipc_threshold: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| phase_tuning::substrate::runtime::TunerConfig::default().ipc_threshold);
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| phase_tuning::Driver::default().threads());

    let mut config = ExperimentConfig {
        workload_slots: slots,
        jobs_per_slot,
        pipeline: PipelineConfig::with_marking(MarkingConfig::paper_best()),
        threads,
        ..ExperimentConfig::default()
    };
    config.tuner.ipc_threshold = ipc_threshold;
    println!("tuner IPC threshold delta = {ipc_threshold}");

    println!(
        "workload: {} slots x {} queued jobs, technique {}, machine {}",
        slots, jobs_per_slot, config.pipeline.marking, config.machine
    );
    println!(
        "running stock baseline and phase-tuned cells through the driver ({threads} workers)...\n"
    );

    let outcome = run_comparison(&config);

    let mut table = TextTable::new(vec![
        "Metric",
        "Stock Linux-like",
        "Phase-based tuning",
        "Change",
    ]);
    table.add_row(vec![
        "completed processes".into(),
        outcome.baseline.completed_count().to_string(),
        outcome.tuned.completed_count().to_string(),
        String::new(),
    ]);
    table.add_row(vec![
        "makespan".into(),
        format_duration_ns(outcome.baseline.final_time_ns),
        format_duration_ns(outcome.tuned.final_time_ns),
        format_pct(phase_tuning::substrate::metrics::percent_decrease(
            outcome.baseline.final_time_ns,
            outcome.tuned.final_time_ns,
        )),
    ]);
    table.add_row(vec![
        "average process time".into(),
        format_duration_ns(outcome.baseline_fairness.avg_process_time_ns),
        format_duration_ns(outcome.tuned_fairness.avg_process_time_ns),
        format_pct(outcome.fairness.avg_time_decrease_pct),
    ]);
    table.add_row(vec![
        "max-flow".into(),
        format_duration_ns(outcome.baseline_fairness.max_flow_ns),
        format_duration_ns(outcome.tuned_fairness.max_flow_ns),
        format_pct(outcome.fairness.max_flow_decrease_pct),
    ]);
    table.add_row(vec![
        "max-stretch".into(),
        format!("{:.2}", outcome.baseline_fairness.max_stretch),
        format!("{:.2}", outcome.tuned_fairness.max_stretch),
        format_pct(outcome.fairness.max_stretch_decrease_pct),
    ]);
    table.add_row(vec![
        "core switches".into(),
        outcome.baseline.total_core_switches.to_string(),
        outcome.tuned.total_core_switches.to_string(),
        String::new(),
    ]);
    table.add_row(vec![
        "phase marks executed".into(),
        outcome.baseline.total_marks_executed.to_string(),
        outcome.tuned.total_marks_executed.to_string(),
        String::new(),
    ]);
    println!("{}", table.render());

    let busy = |r: &phase_tuning::substrate::sched::SimResult| {
        r.core_busy_ns
            .iter()
            .map(|b| format!("{:.1}", b / 1e6))
            .collect::<Vec<_>>()
            .join("/")
    };
    println!(
        "core busy (ms, per core): baseline {}   tuned {}",
        busy(&outcome.baseline),
        busy(&outcome.tuned)
    );
    println!(
        "tuner: {} sections monitored, {} assignment decisions, {} monitor waits",
        outcome.tuner_stats.sections_monitored,
        outcome.tuner_stats.assignments_decided,
        outcome.tuner_stats.monitor_waits
    );
    println!(
        "\nheadline: average process time reduced by {} (the paper reports ~36% on real hardware)",
        format_pct(outcome.average_time_reduction_pct())
    );
}
