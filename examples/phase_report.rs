//! Static-analysis deep dive: run the whole static half of phase-based tuning
//! on one catalogue benchmark and print what every stage found — CFG shape,
//! loops, block types, sections, and phase marks for each technique.
//!
//! This example is purely static (no simulation cells), so it is the one
//! example that does not go through the `ExperimentPlan`/`Driver` API; see
//! `quickstart`, `spec_workload`, and `tune_once_run_anywhere` for the
//! dynamic side.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example phase_report -- [benchmark-name]
//! ```

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::analysis::PhaseType;
use phase_tuning::substrate::cfg::{CallGraph, Cfg, DominatorTree, IntervalPartition, LoopForest};
use phase_tuning::substrate::marking::MarkingConfig;
use phase_tuning::substrate::workload::Catalog;
use phase_tuning::{prepare_program, type_blocks, PipelineConfig, TextTable};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "183.equake".to_string());

    let catalog = Catalog::standard(0.2, 7);
    let bench = catalog
        .by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`; try e.g. 183.equake or 429.mcf"));
    let program = bench.program();
    let machine = MachineSpec::core2_quad_amp();

    println!("benchmark: {}", bench.name());
    println!("program:   {program}");
    println!();

    // Per-procedure control-flow structure.
    let mut structure = TextTable::new(vec![
        "Procedure",
        "Blocks",
        "Instrs",
        "Loops",
        "Max nest",
        "Intervals",
    ]);
    for proc in program.procedures() {
        let cfg = Cfg::build(proc);
        let dom = DominatorTree::build(&cfg);
        let loops = LoopForest::build(&cfg, &dom);
        let intervals = IntervalPartition::build(&cfg);
        let max_nest = proc
            .blocks()
            .iter()
            .map(|b| loops.nesting_depth(b.id()))
            .max()
            .unwrap_or(0);
        structure.add_row(vec![
            proc.name().to_string(),
            proc.block_count().to_string(),
            proc.instruction_count().to_string(),
            loops.loop_count().to_string(),
            max_nest.to_string(),
            intervals.interval_count().to_string(),
        ]);
    }
    println!("{}", structure.render());

    let callgraph = CallGraph::build(program);
    println!(
        "call graph: bottom-up order = {:?}\n",
        callgraph
            .bottom_up_order()
            .iter()
            .map(|p| program.procedure_expect(*p).name().to_string())
            .collect::<Vec<_>>()
    );

    // Block typing at the default configuration.
    let pipeline = PipelineConfig::paper_best();
    let typing = type_blocks(program, &machine, &pipeline);
    let cpu_blocks = typing.blocks_of_type(PhaseType(0)).len();
    let mem_blocks = typing.blocks_of_type(PhaseType(1)).len();
    println!(
        "block typing (profile-guided): {} blocks typed — {} prefer fast cores (π0), {} tolerate slow cores (π1)\n",
        typing.typed_block_count(),
        cpu_blocks,
        mem_blocks
    );

    // Marks per technique.
    let mut marks = TextTable::new(vec![
        "Technique",
        "Phase marks",
        "Added bytes",
        "Space overhead %",
    ]);
    for marking in [
        MarkingConfig::basic_block(10, 0),
        MarkingConfig::basic_block(15, 0),
        MarkingConfig::basic_block(15, 2),
        MarkingConfig::interval(45),
        MarkingConfig::loop_level(45),
        MarkingConfig::loop_level(60),
    ] {
        let instrumented =
            prepare_program(program, &machine, &PipelineConfig::with_marking(marking));
        marks.add_row(vec![
            marking.to_string(),
            instrumented.mark_count().to_string(),
            instrumented.stats().added_bytes.to_string(),
            format!("{:.3}", instrumented.stats().space_overhead * 100.0),
        ]);
    }
    println!("{}", marks.render());

    // Where exactly did the best technique put its marks?
    let best = prepare_program(program, &machine, &pipeline);
    println!("phase marks for {} :", pipeline.marking);
    for mark in best.marks() {
        let from_proc = program.procedure_expect(mark.from.proc).name();
        let to_proc = program.procedure_expect(mark.to.proc).name();
        println!(
            "  {}:{} -> {}:{}  entering phase {}",
            from_proc, mark.from.block, to_proc, mark.to.block, mark.phase_type
        );
    }
}
