//! "Tune once, run anywhere": the same instrumented binary adapts to
//! different asymmetric machines because all asymmetry knowledge is gathered
//! at run time.
//!
//! The example instruments one benchmark once (no machine-specific
//! information is baked in), then runs that same binary on three machines —
//! the paper's 4-core AMP, the 3-core future-work AMP, and a symmetric
//! control machine — and shows how the tuner's decisions differ. The six
//! runs (baseline and tuned per machine) are independent isolation cells of
//! one `ExperimentPlan`, fanned out by the parallel `Driver`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tune_once_run_anywhere
//! ```

use std::sync::Arc;

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::marking::MarkingConfig;
use phase_tuning::substrate::runtime::TunerConfig;
use phase_tuning::substrate::sched::SimConfig;
use phase_tuning::substrate::workload::Catalog;
use phase_tuning::{
    format_duration_ns, prepare_program, CellSpec, Driver, ExperimentPlan, PipelineConfig, Policy,
    TextTable,
};

fn main() {
    let catalog = Catalog::standard(0.4, 7);
    let bench = catalog.by_name("171.swim").expect("catalogue benchmark");

    // The static pipeline never looks at the machine's asymmetry: the same
    // instrumented program is reused on every machine below. (The machine
    // argument is only used by the profile-guided typing heuristic, which the
    // paper also derives from a neutral execution profile.)
    let reference = MachineSpec::core2_quad_amp();
    let pipeline = PipelineConfig::with_marking(MarkingConfig::paper_best());
    let instrumented = Arc::new(prepare_program(bench.program(), &reference, &pipeline));
    println!(
        "instrumented {} once: {} phase marks, {:.2}% space overhead\n",
        bench.name(),
        instrumented.mark_count(),
        instrumented.stats().space_overhead * 100.0
    );

    let machines = [
        MachineSpec::core2_quad_amp(),
        MachineSpec::three_core_amp(),
        MachineSpec::symmetric(4, 2.4),
    ];

    // One isolation cell per (machine, policy): the same binary everywhere.
    let mut plan = ExperimentPlan::new();
    for machine in &machines {
        for policy in [Policy::Stock, Policy::Tuned(TunerConfig::paper_table1())] {
            let mut cell = CellSpec::isolation(
                bench.name(),
                Arc::clone(&instrumented),
                machine.clone(),
                policy,
                SimConfig::default(),
            );
            cell.group = machine.name.clone();
            cell.label = format!("{}/{}", machine.name, policy.name());
            plan.push(cell);
        }
    }
    let outcome = Driver::default().run(plan);

    let mut table = TextTable::new(vec![
        "Machine",
        "Baseline runtime",
        "Tuned runtime",
        "Core switches",
        "Sections monitored",
    ]);
    for machine in &machines {
        let baseline = outcome
            .find(&machine.name, "stock")
            .expect("plan holds the stock cell");
        let tuned = outcome
            .find(&machine.name, "tuned")
            .expect("plan holds the tuned cell");
        let runtime = |cell: &phase_tuning::CellResult| {
            let record = cell.result.records.first().expect("isolation record");
            format_duration_ns(record.completion_ns.unwrap_or_default())
        };
        let switches = tuned
            .result
            .records
            .first()
            .map(|r| r.stats.core_switches)
            .unwrap_or_default();
        table.add_row(vec![
            machine.name.clone(),
            runtime(baseline),
            runtime(tuned),
            switches.to_string(),
            tuned
                .tuner_stats
                .map(|s| s.sections_monitored.to_string())
                .unwrap_or_default(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "on the symmetric machine the tuner finds no IPC difference between core kinds and\n\
         never switches; on both asymmetric machines the same binary adapts by itself."
    );
}
