//! "Tune once, run anywhere": the same instrumented binary adapts to
//! different asymmetric machines because all asymmetry knowledge is gathered
//! at run time.
//!
//! The example instruments one benchmark once (no machine-specific
//! information is baked in), then runs that same binary on three machines —
//! the paper's 4-core AMP, the 3-core future-work AMP, and a symmetric
//! control machine — and shows how the tuner's decisions differ.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tune_once_run_anywhere
//! ```

use std::sync::Arc;

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::marking::MarkingConfig;
use phase_tuning::substrate::runtime::{PhaseTuner, TunerConfig};
use phase_tuning::substrate::sched::{run_in_isolation, NullHook, SimConfig};
use phase_tuning::substrate::workload::Catalog;
use phase_tuning::{format_duration_ns, prepare_program, PipelineConfig, TextTable};

fn main() {
    let catalog = Catalog::standard(0.4, 7);
    let bench = catalog.by_name("171.swim").expect("catalogue benchmark");

    // The static pipeline never looks at the machine's asymmetry: the same
    // instrumented program is reused on every machine below. (The machine
    // argument is only used by the profile-guided typing heuristic, which the
    // paper also derives from a neutral execution profile.)
    let reference = MachineSpec::core2_quad_amp();
    let pipeline = PipelineConfig::with_marking(MarkingConfig::paper_best());
    let instrumented = Arc::new(prepare_program(bench.program(), &reference, &pipeline));
    println!(
        "instrumented {} once: {} phase marks, {:.2}% space overhead\n",
        bench.name(),
        instrumented.mark_count(),
        instrumented.stats().space_overhead * 100.0
    );

    let machines = [
        MachineSpec::core2_quad_amp(),
        MachineSpec::three_core_amp(),
        MachineSpec::symmetric(4, 2.4),
    ];

    let mut table = TextTable::new(vec![
        "Machine",
        "Baseline runtime",
        "Tuned runtime",
        "Core switches",
        "Sections monitored",
    ]);
    for machine in machines {
        let baseline = run_in_isolation(
            bench.name(),
            Arc::clone(&instrumented),
            machine.clone(),
            NullHook,
            SimConfig::default(),
        );
        let tuner = PhaseTuner::new(Arc::new(machine.clone()), TunerConfig::paper_table1());
        let handle = tuner.clone();
        let tuned = run_in_isolation(
            bench.name(),
            Arc::clone(&instrumented),
            machine.clone(),
            tuner,
            SimConfig::default(),
        );
        table.add_row(vec![
            machine.name.clone(),
            format_duration_ns(baseline.completion_ns.unwrap_or_default()),
            format_duration_ns(tuned.completion_ns.unwrap_or_default()),
            tuned.stats.core_switches.to_string(),
            handle.stats().sections_monitored.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "on the symmetric machine the tuner finds no IPC difference between core kinds and\n\
         never switches; on both asymmetric machines the same binary adapts by itself."
    );
}
