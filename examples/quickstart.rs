//! Quickstart: instrument a tiny two-phase program, inspect its phase marks,
//! and run a small baseline-versus-tuned comparison.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::ir::{AccessPattern, Instruction, MemRef, ProgramBuilder, Terminator};
use phase_tuning::substrate::marking::MarkingConfig;
use phase_tuning::{
    comparison_result, planned_workload, prepare_program, prepare_workload, Driver,
    ExperimentConfig, ExperimentPlan, PipelineConfig, Policy,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small program that alternates between a CPU-bound phase and
    //    a memory-bound phase inside a loop — the kind of phase behaviour the
    //    technique exploits.
    let mut builder = ProgramBuilder::new("quickstart");
    let main_proc = builder.declare_procedure("main");
    let mut body = builder.procedure_builder();
    let compute = body.add_block();
    let stream = body.add_block();
    let latch = body.add_block();
    let exit = body.add_block();

    body.push_all(compute, std::iter::repeat_n(Instruction::fp_mul(), 48));
    let big_array = MemRef::new(AccessPattern::Strided { stride_bytes: 8 }, 96 * 1024 * 1024);
    body.push_all(
        stream,
        (0..48).map(|i| {
            if i % 2 == 0 {
                Instruction::load(big_array)
            } else {
                Instruction::fp_add()
            }
        }),
    );
    body.push_all(latch, std::iter::repeat_n(Instruction::int_alu(), 20));
    body.terminate(compute, Terminator::Jump(stream));
    body.terminate(stream, Terminator::Jump(latch));
    body.loop_branch(latch, compute, exit, 200);
    body.terminate(exit, Terminator::Exit);
    builder.define_procedure(main_proc, body)?;
    let program = builder.build()?;

    // 2. Run the static pipeline: type the blocks, find phase transitions,
    //    insert phase marks.
    let machine = MachineSpec::core2_quad_amp();
    let pipeline = PipelineConfig::with_marking(MarkingConfig::basic_block(15, 0));
    let instrumented = prepare_program(&program, &machine, &pipeline);

    println!("program: {program}");
    println!("machine: {machine}");
    println!(
        "phase marks inserted: {} ({} bytes, {:.2}% space overhead)",
        instrumented.mark_count(),
        instrumented.stats().added_bytes,
        instrumented.stats().space_overhead * 100.0
    );
    for mark in instrumented.marks() {
        println!(
            "  mark {:>3?}: {} -> {}  enters phase {}",
            mark.id.0, mark.from, mark.to, mark.phase_type
        );
    }

    // 3. Run a small workload comparison: stock scheduler vs. phase-based
    //    tuning on identical job queues. The cells are described by an
    //    ExperimentPlan (here the cross-product of one workload, one machine,
    //    and two policies) and fanned out by the parallel Driver; bigger
    //    sweeps just add workloads, machines, or policies to the cross.
    let mut config = ExperimentConfig {
        workload_slots: 8,
        jobs_per_slot: 2,
        catalog_scale: 0.12,
        ..ExperimentConfig::default()
    };
    // The cross-product below seeds its cells with cell_seed(base, 0);
    // adopting that seed up front keeps the isolated runtimes measured by
    // prepare_workload on the same stochastic realization as the cells.
    config.sim.seed = phase_tuning::cell_seed(config.workload_seed, 0);
    println!(
        "\nrunning baseline vs. phase-tuned workload ({} slots)...",
        config.workload_slots
    );
    let prepared = prepare_workload(&config);
    let plan = ExperimentPlan::cross(
        &[planned_workload("quickstart", &prepared)],
        std::slice::from_ref(&config.machine),
        &[Policy::Stock, Policy::Tuned(config.tuner)],
        config.sim,
        config.workload_seed,
    );
    let group = format!("quickstart/{}", config.machine.name);
    let cells = Driver::new(2).run(plan);
    let outcome = comparison_result(&group, &cells, &config, &prepared)
        .expect("the cross-product contains the comparison cells");

    println!(
        "throughput: {} ({} -> {} instructions)",
        phase_tuning::format_pct(outcome.throughput.improvement_pct),
        outcome.throughput.baseline_instructions,
        outcome.throughput.technique_instructions,
    );
    println!(
        "average process time: {} -> {} ({})",
        phase_tuning::format_duration_ns(outcome.baseline_fairness.avg_process_time_ns),
        phase_tuning::format_duration_ns(outcome.tuned_fairness.avg_process_time_ns),
        phase_tuning::format_pct(outcome.average_time_reduction_pct()),
    );
    println!(
        "max-stretch: {:.2} -> {:.2} ({})",
        outcome.baseline_fairness.max_stretch,
        outcome.tuned_fairness.max_stretch,
        phase_tuning::format_pct(outcome.fairness.max_stretch_decrease_pct),
    );
    println!(
        "tuner: {} sections monitored, {} assignments decided, {} core-switch requests",
        outcome.tuner_stats.sections_monitored,
        outcome.tuner_stats.assignments_decided,
        outcome.tuner_stats.switch_requests,
    );
    println!(
        "core switches performed: {} (baseline {})",
        outcome.tuned.total_core_switches, outcome.baseline.total_core_switches
    );
    Ok(())
}
