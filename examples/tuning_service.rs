//! The tuning service in ~40 lines: boot a bounded service, tune a
//! catalogue through the in-process handle, repeat the request to see the
//! cache answer it, and drive the same service over the NDJSON wire.
//!
//! Run with: `cargo run --release --example tuning_service`

use std::io::BufReader;
use std::sync::Arc;
use std::time::Instant;

use phase_serve::{parse_request, serve_lines, ServiceConfig, TuningResponse, TuningService};

fn main() {
    // A service over a store bounded to 32 MB: admission control + CLOCK
    // eviction keep the resident footprint under the budget forever.
    let service = Arc::new(
        TuningService::new(ServiceConfig {
            threads: 4,
            budget_bytes: Some(32 * 1024 * 1024),
            ..ServiceConfig::default()
        })
        .expect("cold start cannot fail"),
    );

    // The in-process channel front end.
    let (handle, worker) = TuningService::spawn(Arc::clone(&service));
    let line = "{\"id\": \"demo\", \"kind\": \"isolation\", \
                \"catalog\": {\"scale\": 0.05, \"seed\": 7}, \"ipc_threshold\": 0.2}";
    let request = parse_request(line).expect("the demo request is well-formed");

    let start = Instant::now();
    let cold = handle.request(request.clone()).expect("service is running");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let warm = handle.request(request).expect("service is running");
    let warm_ms = start.elapsed().as_secs_f64() * 1e3;

    if let TuningResponse::Report { report, .. } = &cold {
        println!("tuned {} benchmarks in isolation:", report.rows.len());
        for row in report.rows.iter().take(5) {
            println!(
                "  {:14} {:>4} switches, {:>6} marks executed",
                row.label,
                row.u64("switches"),
                row.u64("marks_executed")
            );
        }
        println!("  ...");
    }
    assert_eq!(
        cold.to_json().render_compact(),
        warm.to_json().render_compact(),
        "cache hits never change the answer"
    );
    println!("cold {cold_ms:.2}ms -> warm {warm_ms:.2}ms (answered from the artifact store)\n");

    // The same service over the NDJSON wire (here an in-memory transcript;
    // `serve_tcp` speaks the identical format over a socket).
    let transcript =
        "{\"id\": \"w1\", \"kind\": \"marks\", \"catalog\": {\"scale\": 0.05, \"seed\": 7}}\n\
                      {\"id\": \"w2\", \"kind\": \"oops\"}\n\
                      {\"id\": \"w3\", \"kind\": \"stats\"}\n";
    let mut out = Vec::new();
    let summary = serve_lines(&service, BufReader::new(transcript.as_bytes()), &mut out)
        .expect("in-memory serving cannot fail");
    println!(
        "wire: {} responses ({} structured errors — malformed lines never kill the loop)",
        summary.responses, summary.errors
    );
    let stats = service.stats();
    println!(
        "service stats: {} requests, {} reports, resident {} / {:?} budget bytes",
        stats.requests,
        stats.reports,
        stats.resident_bytes(),
        stats.budget_bytes.unwrap()
    );

    drop(handle);
    worker.join().expect("worker shuts down cleanly");
}
