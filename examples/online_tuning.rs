//! Online tuning in ~30 lines: stock vs. static marks vs. `phase-online` on
//! a drifting workload whose programs the static pipeline cannot mark.
//!
//! Run with: `cargo run --release --example online_tuning`

use phase_tuning::substrate::amp::MachineSpec;
use phase_tuning::substrate::online::OnlineConfig;
use phase_tuning::substrate::runtime::TunerConfig;
use phase_tuning::substrate::sched::SimConfig;
use phase_tuning::substrate::workload::{Catalog, Workload};
use phase_tuning::{
    baseline_catalog, build_slots, instrument_catalog, Driver, ExperimentPlan, PipelineConfig,
    PlannedWorkload, Policy,
};

fn main() {
    let machine = MachineSpec::core2_quad_amp();
    // Drifting programs: block mix rotates mid-run, every block below the
    // typing threshold — the static pipeline inserts zero marks.
    let catalog = Catalog::drifting(1.0, 7);
    let workload = Workload::drifting(&catalog, 8, 6, 31);
    let marked = instrument_catalog(&catalog, &machine, &PipelineConfig::paper_best());
    let plain = baseline_catalog(&catalog);
    println!(
        "static marks inserted: {}",
        marked.iter().map(|p| p.mark_count()).sum::<usize>()
    );

    let planned = PlannedWorkload {
        name: "drift".into(),
        baseline_slots: build_slots(&workload, &catalog, &plain),
        tuned_slots: build_slots(&workload, &catalog, &marked),
    };
    let sim = SimConfig {
        horizon_ns: Some(40_000_000.0),
        ..SimConfig::default()
    };
    let policies = [
        Policy::Stock,
        Policy::Tuned(TunerConfig::paper_table1()), // blind here: no marks
        Policy::Online(OnlineConfig::default()),    // samples counters instead
    ];
    let plan = ExperimentPlan::cross(&[planned], &[machine], &policies, sim, 0xD61F7);
    let outcome = Driver::new(3).run(plan);

    let stock = outcome.cells[0].result.total_instructions as f64;
    for cell in &outcome.cells {
        println!(
            "{:<32} throughput x{:.3}  completed {:>2}  switches {}",
            cell.label,
            cell.result.total_instructions as f64 / stock,
            cell.result.completed_count(),
            cell.result.total_core_switches,
        );
    }
}
